"""The PARSEC *swaptions* workload.

The original prices a portfolio of swaptions with Heath-Jarrow-Morton
Monte-Carlo simulation: each swaption runs tens of thousands of simulation
trials, each trial being pure floating-point work with data-dependent
branches and essentially no shared memory.  Characteristics preserved:
static division of swaptions between threads, a large amount of compute and
branching per swaption (the paper measures a 7 GB trace with only 8x
compressibility), and negligible synchronization.
"""

from __future__ import annotations

import math
import random as _random
from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_doubles, rng_for, scaled, unpack_doubles

#: Fields per swaption: strike, maturity, tenor, volatility.
FIELDS = 4

#: Monte-Carlo trials per swaption (scaled down from the paper's -sm 50000).
TRIALS = 64

#: Trials batched per recorded branch (keeps the simulation tractable while
#: preserving the branch-heavy character of the trace).
TRIAL_BATCH = 8


class SwaptionsWorkload(Workload):
    """Monte-Carlo swaption pricing (HJM framework, simplified)."""

    name = "swaptions"
    suite = "parsec"
    description = "Price swaptions with Monte-Carlo simulation"
    paper = PaperReference(
        dataset="-ns 128 -sm 50000 -nt 16",
        page_faults=4.66e4,
        faults_per_sec=1.207e4,
        log_mb=7_061,
        compressed_mb=929.0,
        compression_ratio=8,
        bandwidth_mb_per_sec=1830,
        branch_instr_per_sec=4.84e9,
        overhead_band="low",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        swaptions = scaled(size, 96, 192, 384)
        values: List[float] = []
        for _ in range(swaptions):
            values.extend(
                (
                    rng.uniform(0.01, 0.08),  # strike
                    rng.uniform(1.0, 10.0),  # maturity
                    rng.uniform(1.0, 5.0),  # tenor
                    rng.uniform(0.1, 0.4),  # volatility
                )
            )
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_doubles(values),
            meta={"swaptions": swaptions, "seed": seed},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Dict[str, object]:
        swaptions = inp.meta["swaptions"]
        seed = inp.meta["seed"]
        prices_addr = api.calloc(swaptions, 8)

        def worker(wapi: ProgramAPI, start: int, end: int) -> float:
            checksum = 0.0
            index = start
            while wapi.branch(index < end, "swaptions.swaption_loop"):
                fields = unpack_doubles(
                    wapi.load_bytes(inp.base + index * FIELDS * 8, FIELDS * 8)
                )
                strike, maturity, tenor, volatility = fields
                rng = _random.Random(f"swaptions:{seed}:{index}")
                payoff_sum = 0.0
                in_the_money = 0
                # Each trial is ~100 FLOP-equivalents of path simulation.
                wapi.compute(100 * TRIALS)
                outcomes = []
                for trial in range(TRIALS):
                    shock = rng.gauss(0.0, 1.0)
                    forward = 0.04 * math.exp(
                        (-0.5 * volatility**2) * maturity + volatility * math.sqrt(maturity) * shock
                    )
                    payoff = max(forward - strike, 0.0) * tenor
                    payoff_sum += payoff
                    if payoff > 0.0:
                        in_the_money += 1
                    outcomes.append(payoff > 0.0)
                # Several data-dependent branches per trial (path steps and
                # the in-the-money test); the outcomes follow the simulated
                # paths, hence the poor 8x compressibility in the paper.
                for repeat in range(4):
                    wapi.branch_run(outcomes, f"swaptions.trial_step_{repeat}")
                price = payoff_sum / TRIALS
                wapi.storef(prices_addr + index * 8, price)
                wapi.branch(in_the_money > TRIALS // 2, "swaptions.mostly_itm")
                checksum += price
                index += 1
            return checksum

        handles = [
            api.spawn(worker, start, end, name=f"swap-{index}")
            for index, (start, end) in enumerate(chunk_ranges(swaptions, num_threads))
        ]
        checksums = [api.join(handle) for handle in handles]
        total = sum(checksums)
        api.write_output(pack_doubles([total]), source_addresses=[prices_addr])
        return {"checksum": total, "swaptions": swaptions}

    def verify(self, result: Dict[str, object], dataset: DatasetSpec) -> None:
        assert result["swaptions"] == dataset.meta["swaptions"]
        assert result["checksum"] >= 0.0, "negative aggregate swaption value"

"""The Phoenix *matrix_multiply* workload.

Dense ``C = A x B``.  Characteristics preserved: each worker owns a block
of output rows, streams the operands, and performs a lot of arithmetic per
page touched -- matrix multiply has by far the lowest branch rate and trace
bandwidth in the paper (4e8 branches/sec, 105 MB/s) and sits in the
low-overhead band.
"""

from __future__ import annotations

from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_doubles, rng_for, scaled, unpack_doubles


class MatrixMultiplyWorkload(Workload):
    """Blocked dense matrix multiplication."""

    name = "matrix_multiply"
    suite = "phoenix"
    description = "Dense matrix multiply C = A x B with row-block parallelism"
    paper = PaperReference(
        dataset="2000 2000",
        page_faults=2.32e5,
        faults_per_sec=11.65e4,
        log_mb=2_101,
        compressed_mb=97.0,
        compression_ratio=22,
        bandwidth_mb_per_sec=105,
        branch_instr_per_sec=4.05e8,
        overhead_band="low",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        dimension = scaled(size, 56, 88, 120)
        a = [rng.uniform(-1.0, 1.0) for _ in range(dimension * dimension)]
        b = [rng.uniform(-1.0, 1.0) for _ in range(dimension * dimension)]
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_doubles(a + b),
            meta={"dimension": dimension},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Dict[str, object]:
        n = inp.meta["dimension"]
        a_base = inp.base
        b_base = inp.base + n * n * 8
        c_addr = api.calloc(n * n, 8)

        def worker(wapi: ProgramAPI, row_start: int, row_end: int) -> None:
            # Load B once per worker (row by row, like the blocked original).
            b_matrix: List[List[float]] = []
            row = 0
            while wapi.branch(row < n, "matmul.load_b"):
                b_matrix.append(unpack_doubles(wapi.load_bytes(b_base + row * n * 8, n * 8)))
                row += 1
            row = row_start
            while wapi.branch(row < row_end, "matmul.row_loop"):
                a_row = unpack_doubles(wapi.load_bytes(a_base + row * n * 8, n * 8))
                wapi.compute(2 * n * n)
                c_row = [0.0] * n
                for k in range(n):
                    a_value = a_row[k]
                    if a_value == 0.0:
                        continue
                    b_row = b_matrix[k]
                    for j in range(n):
                        c_row[j] += a_value * b_row[j]
                wapi.store_bytes(c_addr + row * n * 8, pack_doubles(c_row))
                row += 1

        handles = [
            api.spawn(worker, start, end, name=f"matmul-{index}")
            for index, (start, end) in enumerate(chunk_ranges(n, num_threads))
        ]
        join_all(api, handles)
        trace = sum(api.loadf(c_addr + (i * n + i) * 8) for i in range(n))
        api.write_output(pack_doubles([trace]), source_addresses=[c_addr])
        return {"trace": trace, "dimension": n, "c_addr": c_addr}

    def verify(self, result: Dict[str, object], dataset: DatasetSpec) -> None:
        n = dataset.meta["dimension"]
        values = unpack_doubles(dataset.payload)
        a, b = values[: n * n], values[n * n :]
        expected_trace = 0.0
        for i in range(n):
            expected_trace += sum(a[i * n + k] * b[k * n + i] for k in range(n))
        assert abs(result["trace"] - expected_trace) < 1e-6 * max(1.0, abs(expected_trace)), (
            "trace of C does not match the reference computation"
        )

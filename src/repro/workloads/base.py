"""Workload abstractions: the applications the paper evaluates.

The paper evaluates INSPECTOR on the Phoenix 2.0 and PARSEC 3.0 benchmark
suites.  Those native C programs (and their multi-hundred-megabyte inputs)
are not available offline, so each application is re-implemented as a
:class:`Workload` against the program API, scaled down but preserving the
characteristics that drive the paper's results: how much computation it
performs per page it touches, how often it synchronizes, how many threads
it creates, how write-heavy it is, and how branchy its inner loops are.
Each concrete workload documents the shape it preserves in its docstring.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.threads.program import ProgramAPI

#: The canonical dataset sizes of Figure 8.
SIZES = ("small", "medium", "large")


@dataclass
class DatasetSpec:
    """A generated input dataset.

    Attributes:
        workload: Name of the workload the dataset belongs to.
        size: Size label (``"small"``, ``"medium"``, ``"large"``).
        payload: Raw bytes mapped into the input region.
        meta: Workload-specific parameters (element counts, cluster counts,
            expected results, ...).
    """

    workload: str
    size: str
    payload: bytes
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        """Length of the raw input in bytes."""
        return len(self.payload)


@dataclass
class InputDescriptor:
    """Where a dataset was mapped and what it contains.

    Attributes:
        base: Address of the first input byte in the input region.
        size: Input length in bytes.
        meta: The dataset's metadata dictionary (same object as the spec's).
    """

    base: int
    size: int
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class PaperReference:
    """The paper-reported numbers for one workload (16 threads).

    These are copied from Figures 7 and 9 of the paper and used by
    EXPERIMENTS.md to report paper-versus-measured values side by side.

    Attributes:
        dataset: The dataset / parameter string of Figure 7.
        page_faults: Total page faults (Figure 7).
        faults_per_sec: Page faults per second (Figure 7).
        log_mb: Provenance log size in MB (Figure 9).
        compressed_mb: lz4-compressed log size in MB (Figure 9).
        compression_ratio: Compression ratio (Figure 9).
        bandwidth_mb_per_sec: Log bandwidth in MB/s (Figure 9).
        branch_instr_per_sec: Branch instructions per second (Figure 9).
        overhead_band: Qualitative Figure 5 band at 16 threads:
            ``"low"`` (about 1x-2.5x), ``"high"`` (outlier above 2.5x), or
            ``"below_native"`` (faster than pthreads).
    """

    dataset: str
    page_faults: float
    faults_per_sec: float
    log_mb: float
    compressed_mb: float
    compression_ratio: float
    bandwidth_mb_per_sec: float
    branch_instr_per_sec: float
    overhead_band: str = "low"


class Workload(ABC):
    """Base class for the twelve evaluated applications.

    Subclasses provide a dataset generator and the parallel ``run`` method
    written against the program API.  The same ``run`` executes unmodified
    under the native backend and under INSPECTOR, which mirrors the paper's
    "no recompilation" property.
    """

    #: Unique workload name (matches the paper's tables).
    name: str = ""
    #: The benchmark suite the application comes from.
    suite: str = ""
    #: Short description of what the application computes.
    description: str = ""
    #: Paper-reported reference numbers for EXPERIMENTS.md.
    paper: Optional[PaperReference] = None

    @abstractmethod
    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        """Generate a synthetic dataset of the requested size."""

    @abstractmethod
    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Any:
        """Execute the workload with ``num_threads`` worker threads."""

    def verify(self, result: Any, dataset: DatasetSpec) -> None:
        """Check the result against the dataset's expected output.

        Raises:
            AssertionError: If the result is wrong.  The default
                implementation accepts anything; workloads with cheap exact
                answers override it.
        """

    def sizes(self) -> Tuple[str, ...]:
        """Dataset sizes this workload supports."""
        return SIZES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name} ({self.suite})>"


def chunk_ranges(total: int, chunks: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``range(total)`` into ``chunks`` contiguous (start, end) ranges.

    The data-parallel workloads use this to divide their input between
    worker threads the same way the Phoenix/PARSEC versions do.
    """
    if chunks <= 0:
        raise ValueError(f"chunks must be positive, got {chunks}")
    base = total // chunks
    remainder = total % chunks
    ranges = []
    start = 0
    for index in range(chunks):
        end = start + base + (1 if index < remainder else 0)
        ranges.append((start, end))
        start = end
    return tuple(ranges)

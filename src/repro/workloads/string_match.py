"""The Phoenix *string_match* workload.

The original program scans a key file and checks every word against a small
set of "encrypted" target keys.  Characteristics preserved: a read-only
streaming scan, a handful of comparisons per word, almost no writes, and a
dense stream of conditional branches -- the paper measures a low overhead
dominated by PT tracing and one of the *least* compressible traces (6x)
because the branch outcomes are data dependent.
"""

from __future__ import annotations

from typing import Dict

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_words, rng_for, scaled, unpack_words

#: Words per chunked read.
CHUNK = 256

#: The "encrypted keys" every word is compared against.
TARGET_KEYS = (17, 4242, 90001, 31337)


class StringMatchWorkload(Workload):
    """Streaming key search over a synthetic key file."""

    name = "string_match"
    suite = "phoenix"
    description = "Match every word of a key file against four target keys"
    paper = PaperReference(
        dataset="key_file_500MB.txt",
        page_faults=3.11e4,
        faults_per_sec=1.993e4,
        log_mb=2751,
        compressed_mb=430.0,
        compression_ratio=6,
        bandwidth_mb_per_sec=1763,
        branch_instr_per_sec=5.61e9,
        overhead_band="low",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        words = scaled(size, 8_192, 24_576, 73_728)
        values = []
        matches = 0
        for _ in range(words):
            if rng.random() < 0.01:
                value = rng.choice(TARGET_KEYS)
                matches += 1
            else:
                value = rng.randint(0, 1 << 20)
                if value in TARGET_KEYS:
                    matches += 1
            values.append(value)
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_words(values),
            meta={"words": words, "expected_matches": matches},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> int:
        words = inp.meta["words"]
        counts_addr = api.calloc(num_threads, 8)

        def worker(wapi: ProgramAPI, index: int, start: int, end: int) -> None:
            matches = 0
            cursor = start
            while wapi.branch(cursor < end, "strmatch.scan_loop"):
                upper = min(cursor + CHUNK, end)
                raw = wapi.load_bytes(inp.base + cursor * 8, (upper - cursor) * 8)
                values = unpack_words(raw)
                # Four key comparisons (with character-level work) per word.
                wapi.compute(35 * len(values))
                # The character-comparison exit branch depends on the data,
                # which is why string_match has the paper's least
                # compressible trace (6x).
                wapi.branch_run([value & 1 for value in values], "strmatch.char_loop")
                chunk_matches = sum(1 for value in values if value in TARGET_KEYS)
                wapi.branch(chunk_matches > 0, "strmatch.found_in_chunk")
                matches += chunk_matches
                cursor = upper
            wapi.store(counts_addr + index * 8, matches)

        handles = [
            api.spawn(worker, index, start, end, name=f"strmatch-{index}")
            for index, (start, end) in enumerate(chunk_ranges(words, num_threads))
        ]
        join_all(api, handles)
        total = sum(api.load(counts_addr + index * 8) for index in range(num_threads))
        api.write_output(pack_words([total]), source_addresses=[counts_addr])
        return total

    def verify(self, result: int, dataset: DatasetSpec) -> None:
        assert result == dataset.meta["expected_matches"], "match count is wrong"

"""The Phoenix *linear_regression* workload.

The original program fits ``y = a*x + b`` over a large point file.  The
Phoenix implementation keeps one partial-sum slot per thread in a shared
array; adjacent slots share cache lines, so the native pthreads execution
suffers heavy false sharing -- which is exactly why the paper reports
INSPECTOR (threads as processes, private pages) running *faster* than
pthreads for this benchmark.  The reproduction preserves that behaviour by
having every worker update its shared slot after every chunk.
"""

from __future__ import annotations

from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_doubles, rng_for, scaled, unpack_doubles

#: Points processed per chunked read (every chunk ends with stores into the
#: falsely shared result array, as the Phoenix implementation does).
CHUNK = 96

#: Number of partial sums each worker maintains (sx, sy, sxx, syy, sxy).
SLOTS = 5


class LinearRegressionWorkload(Workload):
    """Least-squares line fit with falsely shared partial-sum slots."""

    name = "linear_regression"
    suite = "phoenix"
    description = "Least-squares fit of y = a*x + b over a point file"
    paper = PaperReference(
        dataset="key_file_500MB.txt",
        page_faults=2.88e4,
        faults_per_sec=11.11e4,
        log_mb=183,
        compressed_mb=5.5,
        compression_ratio=34,
        bandwidth_mb_per_sec=707,
        branch_instr_per_sec=3.81e9,
        overhead_band="below_native",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        points = scaled(size, 8_192, 24_576, 73_728)
        slope, intercept = 3.5, -7.0
        coordinates: List[float] = []
        for index in range(points):
            x = float(index % 1_000)
            noise = rng.uniform(-0.5, 0.5)
            coordinates.extend((x, slope * x + intercept + noise))
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_doubles(coordinates),
            meta={"points": points, "slope": slope, "intercept": intercept},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Dict[str, float]:
        points = inp.meta["points"]
        # One SLOTS-wide accumulator per worker, deliberately adjacent so
        # that several workers' slots share pages and cache lines.
        results_addr = api.calloc(num_threads * SLOTS, 8)

        def worker(wapi: ProgramAPI, index: int, start: int, end: int) -> None:
            slot = results_addr + index * SLOTS * 8
            sx = sy = sxx = syy = sxy = 0.0
            cursor = start
            while wapi.branch(cursor < end, "linreg.scan_loop"):
                upper = min(cursor + CHUNK, end)
                raw = wapi.load_bytes(inp.base + cursor * 2 * 8, (upper - cursor) * 2 * 8)
                values = unpack_doubles(raw)
                # Parse + five multiply-accumulates per point.
                wapi.compute(20 * (upper - cursor))
                # Loop branch per point, essentially always taken (34x
                # compressible trace in the paper).
                wapi.branch_run([True] * (upper - cursor), "linreg.point_loop")
                for offset in range(0, len(values), 2):
                    x, y = values[offset], values[offset + 1]
                    sx += x
                    sy += y
                    sxx += x * x
                    syy += y * y
                    sxy += x * y
                # The Phoenix code updates the shared per-thread struct as it
                # goes; these stores are what produce false sharing natively.
                for slot_index, value in enumerate((sx, sy, sxx, syy, sxy)):
                    wapi.storef(slot + slot_index * 8, value)
                cursor = upper

        ranges = chunk_ranges(points, num_threads)
        handles = [
            api.spawn(worker, index, start, end, name=f"linreg-{index}")
            for index, (start, end) in enumerate(ranges)
        ]
        join_all(api, handles)

        totals = [0.0] * SLOTS
        for index in range(num_threads):
            for slot_index in range(SLOTS):
                totals[slot_index] += api.loadf(results_addr + (index * SLOTS + slot_index) * 8)
        sx, sy, sxx, _, sxy = totals
        n = float(points)
        denominator = n * sxx - sx * sx
        slope = (n * sxy - sx * sy) / denominator if denominator else 0.0
        intercept = (sy - slope * sx) / n if n else 0.0
        api.write_output(
            pack_doubles([slope, intercept]),
            source_addresses=[results_addr, results_addr + 8],
        )
        return {"slope": slope, "intercept": intercept}

    def verify(self, result: Dict[str, float], dataset: DatasetSpec) -> None:
        assert abs(result["slope"] - dataset.meta["slope"]) < 0.05, "slope is off"
        assert abs(result["intercept"] - dataset.meta["intercept"]) < 2.0, "intercept is off"

"""The Phoenix *kmeans* workload.

The original program clusters 3-dimensional points, re-spawning its worker
threads on every iteration of the convergence loop; with the paper's
parameters it ends up creating more than 400 threads.  Under INSPECTOR a
thread is a process, and process creation is roughly an order of magnitude
more expensive than ``pthread_create``, which is why kmeans is one of the
paper's three high-overhead outliers (and the overhead is attributed to the
threading library, not to PT).  The reproduction preserves exactly that
structure: a fixed number of iterations, each spawning a fresh set of
workers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_doubles, rng_for, scaled, unpack_doubles

#: Dimensionality of the points (the paper uses -d 3).
DIMENSIONS = 3

#: Number of clusters (scaled down from the paper's -c 500).
CLUSTERS = 8

#: Points per chunked read.
CHUNK = 128


class KMeansWorkload(Workload):
    """Iterative k-means clustering that re-creates its workers every iteration."""

    name = "kmeans"
    suite = "phoenix"
    description = "k-means clustering of 3-d points with per-iteration thread creation"
    paper = PaperReference(
        dataset="-d 3 -c 500 -p 50000 -s 500",
        page_faults=1.16e6,
        faults_per_sec=13.99e4,
        log_mb=11_900,
        compressed_mb=522.0,
        compression_ratio=23,
        bandwidth_mb_per_sec=1438,
        branch_instr_per_sec=5.79e9,
        overhead_band="high",
    )

    #: Convergence-loop iterations; each spawns ``num_threads`` fresh workers,
    #: so at 16 threads the run creates 16 * 26 = 416 processes -- matching
    #: the "more than 400 threads" the paper reports.
    iterations = 26

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        points = scaled(size, 1_536, 3_072, 9_216)
        coordinates: List[float] = []
        centers = [
            tuple(rng.uniform(0.0, 100.0) for _ in range(DIMENSIONS)) for _ in range(CLUSTERS)
        ]
        for index in range(points):
            center = centers[index % CLUSTERS]
            coordinates.extend(center[d] + rng.uniform(-2.0, 2.0) for d in range(DIMENSIONS))
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_doubles(coordinates),
            meta={"points": points, "clusters": CLUSTERS, "dimensions": DIMENSIONS},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> Dict[str, object]:
        points = inp.meta["points"]
        # Centroids plus per-worker partial sums (sum per dimension + count).
        centroids_addr = api.calloc(CLUSTERS * DIMENSIONS, 8)
        partials_addr = api.calloc(num_threads * CLUSTERS * (DIMENSIONS + 1), 8)

        # Initialise centroids from the first CLUSTERS points of the input.
        initial = unpack_doubles(api.load_bytes(inp.base, CLUSTERS * DIMENSIONS * 8))
        for offset, value in enumerate(initial):
            api.storef(centroids_addr + offset * 8, value)

        def worker(wapi: ProgramAPI, index: int, start: int, end: int) -> None:
            centroids = [
                wapi.loadf(centroids_addr + offset * 8) for offset in range(CLUSTERS * DIMENSIONS)
            ]
            sums = [0.0] * (CLUSTERS * DIMENSIONS)
            counts = [0] * CLUSTERS
            cursor = start
            while wapi.branch(cursor < end, "kmeans.assign_loop"):
                upper = min(cursor + CHUNK, end)
                raw = wapi.load_bytes(
                    inp.base + cursor * DIMENSIONS * 8, (upper - cursor) * DIMENSIONS * 8
                )
                values = unpack_doubles(raw)
                # Distance to every cluster plus the argmin bookkeeping.
                wapi.compute(2 * CLUSTERS * DIMENSIONS * (upper - cursor))
                assignments = []
                for point_index in range(upper - cursor):
                    px = values[point_index * DIMENSIONS : (point_index + 1) * DIMENSIONS]
                    best, best_distance = 0, float("inf")
                    for cluster in range(CLUSTERS):
                        distance = 0.0
                        for dimension in range(DIMENSIONS):
                            diff = px[dimension] - centroids[cluster * DIMENSIONS + dimension]
                            distance += diff * diff
                        if distance < best_distance:
                            best, best_distance = cluster, distance
                    counts[best] += 1
                    assignments.append(best == 0)
                    for dimension in range(DIMENSIONS):
                        sums[best * DIMENSIONS + dimension] += px[dimension]
                # The nearest-cluster comparison branch per point.
                wapi.branch_run(assignments, "kmeans.nearest_cluster")
                cursor = upper
            base = partials_addr + index * CLUSTERS * (DIMENSIONS + 1) * 8
            for cluster in range(CLUSTERS):
                for dimension in range(DIMENSIONS):
                    wapi.storef(
                        base + (cluster * (DIMENSIONS + 1) + dimension) * 8,
                        sums[cluster * DIMENSIONS + dimension],
                    )
                wapi.store(base + (cluster * (DIMENSIONS + 1) + DIMENSIONS) * 8, counts[cluster])

        ranges = chunk_ranges(points, num_threads)
        for _ in range(self.iterations):
            # The Phoenix implementation re-creates its worker threads every
            # iteration -- the defining cost of this benchmark.
            handles = [
                api.spawn(worker, index, start, end, name=f"kmeans-{index}")
                for index, (start, end) in enumerate(ranges)
            ]
            join_all(api, handles)
            # Reduce the partial sums and update the centroids.
            api.call("kmeans.update_centroids")
            for cluster in range(CLUSTERS):
                total = 0
                sums = [0.0] * DIMENSIONS
                for index in range(num_threads):
                    base = partials_addr + index * CLUSTERS * (DIMENSIONS + 1) * 8
                    for dimension in range(DIMENSIONS):
                        sums[dimension] += api.loadf(
                            base + (cluster * (DIMENSIONS + 1) + dimension) * 8
                        )
                    total += api.load(base + (cluster * (DIMENSIONS + 1) + DIMENSIONS) * 8)
                if api.branch(total > 0, "kmeans.nonempty_cluster"):
                    for dimension in range(DIMENSIONS):
                        api.storef(
                            centroids_addr + (cluster * DIMENSIONS + dimension) * 8,
                            sums[dimension] / total,
                        )

        centroids = [
            [api.loadf(centroids_addr + (cluster * DIMENSIONS + d) * 8) for d in range(DIMENSIONS)]
            for cluster in range(CLUSTERS)
        ]
        api.write_output(
            pack_doubles([value for row in centroids for value in row]),
            source_addresses=[centroids_addr],
        )
        return {"centroids": centroids, "iterations": self.iterations}

    def verify(self, result: Dict[str, object], dataset: DatasetSpec) -> None:
        centroids = result["centroids"]
        assert len(centroids) == CLUSTERS
        for centroid in centroids:
            assert all(-50.0 <= value <= 150.0 for value in centroid), "centroid out of range"

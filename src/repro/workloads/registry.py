"""The workload registry: every evaluated application by name."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.base import Workload
from repro.workloads.blackscholes import BlackScholesWorkload
from repro.workloads.canneal import CannealWorkload
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.linear_regression import LinearRegressionWorkload
from repro.workloads.matrix_multiply import MatrixMultiplyWorkload
from repro.workloads.pca import PCAWorkload
from repro.workloads.reverse_index import ReverseIndexWorkload
from repro.workloads.streamcluster import StreamclusterWorkload
from repro.workloads.string_match import StringMatchWorkload
from repro.workloads.swaptions import SwaptionsWorkload
from repro.workloads.word_count import WordCountWorkload

#: Every evaluated workload class, in the order the paper's figures list them.
WORKLOAD_CLASSES: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        BlackScholesWorkload,
        CannealWorkload,
        HistogramWorkload,
        KMeansWorkload,
        LinearRegressionWorkload,
        MatrixMultiplyWorkload,
        PCAWorkload,
        ReverseIndexWorkload,
        StreamclusterWorkload,
        StringMatchWorkload,
        SwaptionsWorkload,
        WordCountWorkload,
    )
}

#: The four workloads shipped with small/medium/large inputs in Figure 8.
INPUT_SCALING_WORKLOADS = ("histogram", "linear_regression", "string_match", "word_count")

#: The paper's three high-overhead outliers.
OUTLIER_WORKLOADS = ("canneal", "reverse_index", "kmeans")


def list_workloads() -> List[str]:
    """Names of every registered workload, in figure order."""
    return list(WORKLOAD_CLASSES)


def get_workload(name: str) -> Workload:
    """Instantiate the workload called ``name``.

    Raises:
        KeyError: If no workload with that name is registered.
    """
    try:
        return WORKLOAD_CLASSES[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(list_workloads())}"
        ) from exc


def all_workloads() -> List[Workload]:
    """Fresh instances of every registered workload."""
    return [cls() for cls in WORKLOAD_CLASSES.values()]

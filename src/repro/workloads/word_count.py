"""The Phoenix *word_count* workload.

The original program counts word occurrences in a text file.
Characteristics preserved: a streaming scan of the input, per-thread hash
accumulation over a sizeable key space (so each worker dirties a spread of
heap pages), and a merge phase under a mutex.  The paper measures the
highest fault *rate* of all benchmarks for word_count (5.4e5 faults/sec)
with a moderately compressible trace (8x).
"""

from __future__ import annotations

from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_words, random_text_words, rng_for, scaled, unpack_words

#: Vocabulary size (distinct word identifiers).
VOCABULARY = 128

#: Words per chunked read.
CHUNK = 256


class WordCountWorkload(Workload):
    """Word-frequency counting over a synthetic text stream."""

    name = "word_count"
    suite = "phoenix"
    description = "Count the occurrences of every word in a text file"
    paper = PaperReference(
        dataset="word_100MB.txt",
        page_faults=1.56e5,
        faults_per_sec=54.34e4,
        log_mb=4121,
        compressed_mb=508.0,
        compression_ratio=8,
        bandwidth_mb_per_sec=1435,
        branch_instr_per_sec=2.80e9,
        overhead_band="low",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        words = scaled(size, 8_192, 24_576, 73_728)
        stream = random_text_words(rng, words, vocabulary=VOCABULARY)
        expected = [0] * VOCABULARY
        for word in stream:
            expected[word] += 1
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_words(stream),
            meta={"words": words, "expected": expected},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> List[int]:
        words = inp.meta["words"]
        counts_addr = api.calloc(VOCABULARY, 8)
        merge_lock = api.mutex("word_count.merge")

        def worker(wapi: ProgramAPI, start: int, end: int) -> None:
            # Per-thread table kept in tracked heap memory: word_count's
            # hash updates are what give it the paper's high fault rate.
            local_addr = wapi.calloc(VOCABULARY, 8)
            cursor = start
            while wapi.branch(cursor < end, "wordcount.scan_loop"):
                upper = min(cursor + CHUNK, end)
                raw = wapi.load_bytes(inp.base + cursor * 8, (upper - cursor) * 8)
                stream = unpack_words(raw)
                # Tokenise the characters, hash, and insert every word
                # (~60 ops each -- word_count is byte-level work).
                wapi.compute(60 * len(stream))
                # Hash-probe branch per word: skewed by the Zipf word
                # distribution, hence the moderate 8x compressibility.
                wapi.branch_run([word & 1 for word in stream], "wordcount.hash_probe")
                chunk_counts: Dict[int, int] = {}
                for word in stream:
                    chunk_counts[word] = chunk_counts.get(word, 0) + 1
                for word, count in chunk_counts.items():
                    address = local_addr + word * 8
                    wapi.store(address, wapi.load(address) + count)
                cursor = upper
            wapi.call("wordcount.merge")
            wapi.lock(merge_lock)
            for word in range(VOCABULARY):
                count = wapi.load(local_addr + word * 8)
                if count:
                    address = counts_addr + word * 8
                    wapi.store(address, wapi.load(address) + count)
            wapi.unlock(merge_lock)
            wapi.free(local_addr)

        handles = [
            api.spawn(worker, start, end, name=f"wc-{index}")
            for index, (start, end) in enumerate(chunk_ranges(words, num_threads))
        ]
        join_all(api, handles)
        result = [api.load(counts_addr + word * 8) for word in range(VOCABULARY)]
        api.write_output(
            pack_words(result[:16]),
            source_addresses=[counts_addr + word * 8 for word in range(16)],
        )
        return result

    def verify(self, result: List[int], dataset: DatasetSpec) -> None:
        assert result == dataset.meta["expected"], "word counts do not match the input"

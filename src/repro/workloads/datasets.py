"""Synthetic dataset generation helpers shared by the workloads.

The paper's inputs (bitmap images, 500 MB key files, netlists, option
portfolios) are replaced by deterministic synthetic equivalents that are
small enough to simulate but keep the same structure.  All generators are
seeded so that every run -- and therefore every CPG and every benchmark
row -- is reproducible.
"""

from __future__ import annotations

import random
import struct
from typing import Iterable, List, Sequence, Tuple

_WORD = struct.Struct("<q")
_DOUBLE = struct.Struct("<d")

#: Size in bytes of one packed word/double.
ELEMENT_SIZE = 8


def pack_words(values: Iterable[int]) -> bytes:
    """Pack integers as consecutive little-endian 64-bit words."""
    return b"".join(_WORD.pack(int(value)) for value in values)


def unpack_words(payload: bytes) -> List[int]:
    """Invert :func:`pack_words`."""
    return [
        _WORD.unpack_from(payload, offset)[0] for offset in range(0, len(payload), ELEMENT_SIZE)
    ]


def pack_doubles(values: Iterable[float]) -> bytes:
    """Pack floats as consecutive little-endian IEEE-754 doubles."""
    return b"".join(_DOUBLE.pack(float(value)) for value in values)


def unpack_doubles(payload: bytes) -> List[float]:
    """Invert :func:`pack_doubles`."""
    return [
        _DOUBLE.unpack_from(payload, offset)[0] for offset in range(0, len(payload), ELEMENT_SIZE)
    ]


def rng_for(workload: str, size: str, seed: int) -> random.Random:
    """Return a deterministic RNG namespaced by workload and size."""
    return random.Random(f"{workload}:{size}:{seed}")


def scaled(size: str, small: int, medium: int, large: int) -> int:
    """Pick a size-dependent element count."""
    if size == "small":
        return small
    if size == "medium":
        return medium
    if size == "large":
        return large
    raise ValueError(f"unknown dataset size {size!r}")


def random_words(rng: random.Random, count: int, low: int = 0, high: int = 255) -> List[int]:
    """Generate ``count`` random integers in ``[low, high]``."""
    return [rng.randint(low, high) for _ in range(count)]


def random_doubles(rng: random.Random, count: int, low: float = 0.0, high: float = 1.0) -> List[float]:
    """Generate ``count`` random floats in ``[low, high)``."""
    return [rng.uniform(low, high) for _ in range(count)]


def random_points(
    rng: random.Random, count: int, dimensions: int, spread: float = 100.0
) -> List[Tuple[float, ...]]:
    """Generate ``count`` points in ``dimensions``-dimensional space."""
    return [tuple(rng.uniform(0.0, spread) for _ in range(dimensions)) for _ in range(count)]


def random_text_words(rng: random.Random, count: int, vocabulary: int = 64) -> List[int]:
    """Generate a word-id stream drawn from a Zipf-ish vocabulary.

    Word counting and reverse indexing operate on word identifiers rather
    than strings (strings would only slow the simulation down without
    changing its memory behaviour); the skewed distribution preserves the
    hot-key behaviour of real text.
    """
    weights = [1.0 / (rank + 1) for rank in range(vocabulary)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    words = []
    for _ in range(count):
        pick = rng.random()
        for word_id, bound in enumerate(cumulative):
            if pick <= bound:
                words.append(word_id)
                break
        else:
            words.append(vocabulary - 1)
    return words


def flatten(points: Sequence[Tuple[float, ...]]) -> List[float]:
    """Flatten a point list into a coordinate list."""
    return [coordinate for point in points for coordinate in point]

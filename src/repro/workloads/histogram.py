"""The Phoenix *histogram* workload.

The original program computes per-channel colour histograms of a bitmap
image.  Characteristics preserved here: a sequential scan over a large
read-only input, a small amount of computation per pixel, thread-private
accumulation, and a short merge phase under a mutex at the end -- which is
why the paper places histogram in the low-overhead band with a large,
highly compressible trace.
"""

from __future__ import annotations

from typing import Dict, List

from repro.threads.program import ProgramAPI, join_all
from repro.workloads.base import DatasetSpec, InputDescriptor, PaperReference, Workload, chunk_ranges
from repro.workloads.datasets import pack_words, rng_for, scaled, unpack_words

#: Number of histogram buckets (256 intensity levels, like the original).
BUCKETS = 256

#: Input elements processed per chunked read.
CHUNK = 256


class HistogramWorkload(Workload):
    """Colour-histogram computation over a synthetic image."""

    name = "histogram"
    suite = "phoenix"
    description = "Per-intensity histogram of a bitmap image"
    paper = PaperReference(
        dataset="large.bmp",
        page_faults=4.27e4,
        faults_per_sec=10.78e4,
        log_mb=381,
        compressed_mb=11.3,
        compression_ratio=34,
        bandwidth_mb_per_sec=961,
        branch_instr_per_sec=4.17e9,
        overhead_band="low",
    )

    def generate_dataset(self, size: str = "medium", seed: int = 42) -> DatasetSpec:
        rng = rng_for(self.name, size, seed)
        pixels = scaled(size, 8_192, 24_576, 73_728)
        values = [rng.randint(0, BUCKETS - 1) for _ in range(pixels)]
        expected = [0] * BUCKETS
        for value in values:
            expected[value] += 1
        return DatasetSpec(
            workload=self.name,
            size=size,
            payload=pack_words(values),
            meta={"pixels": pixels, "expected": expected},
        )

    def run(self, api: ProgramAPI, inp: InputDescriptor, num_threads: int) -> List[int]:
        pixels = inp.meta["pixels"]
        histogram_addr = api.calloc(BUCKETS, 8)
        merge_lock = api.mutex("histogram.merge")

        def worker(wapi: ProgramAPI, start: int, end: int) -> None:
            local: Dict[int, int] = {}
            cursor = start
            while wapi.branch(cursor < end, "histogram.scan_loop"):
                upper = min(cursor + CHUNK, end)
                raw = wapi.load_bytes(inp.base + cursor * 8, (upper - cursor) * 8)
                values = unpack_words(raw)
                # ~32 ops per pixel: load, decode the three channels, mask,
                # index, increment (matching the byte-level original).
                wapi.compute(32 * len(values))
                # One loop-continuation branch per pixel; almost always
                # taken, which is why histogram's trace compresses ~34x.
                wapi.branch_run([value >= 0 for value in values], "histogram.pixel_loop")
                for value in values:
                    bucket = value & (BUCKETS - 1)
                    local[bucket] = local.get(bucket, 0) + 1
                cursor = upper
            wapi.call("histogram.merge")
            wapi.lock(merge_lock)
            for bucket, count in sorted(local.items()):
                address = histogram_addr + bucket * 8
                wapi.store(address, wapi.load(address) + count)
            wapi.unlock(merge_lock)

        handles = [
            api.spawn(worker, start, end, name=f"hist-{index}")
            for index, (start, end) in enumerate(chunk_ranges(pixels, num_threads))
        ]
        join_all(api, handles)

        result = [api.load(histogram_addr + bucket * 8) for bucket in range(BUCKETS)]
        api.write_output(
            pack_words(result),
            source_addresses=[histogram_addr + bucket * 8 for bucket in range(0, BUCKETS, 64)],
        )
        return result

    def verify(self, result: List[int], dataset: DatasetSpec) -> None:
        assert result == dataset.meta["expected"], "histogram counts do not match the input"

"""Exception hierarchy shared by every subsystem of the INSPECTOR reproduction.

Keeping the exceptions in one module lets callers catch coarse categories
(``InspectorError``) or precise conditions (``DeadlockError``) without
importing the subsystem that raises them.
"""

from __future__ import annotations


class InspectorError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class MemoryError_(InspectorError):
    """Base class for errors raised by the memory subsystem.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class InvalidAddressError(MemoryError_):
    """An address falls outside every mapped region of the address space."""


class ProtectionError(MemoryError_):
    """An access violates page protection and no fault handler is installed."""


class AllocationError(MemoryError_):
    """The simulated allocator cannot satisfy a request."""


class DoubleFreeError(AllocationError):
    """An address was freed twice or was never allocated."""


class ThreadingError(InspectorError):
    """Base class for errors raised by the simulated threading runtime."""


class DeadlockError(ThreadingError):
    """No simulated process is runnable but some are still blocked."""


class InvalidSyncStateError(ThreadingError):
    """A synchronization primitive was used incorrectly.

    Examples: unlocking a mutex the caller does not hold, joining a thread
    twice, or re-initialising a barrier while threads are waiting on it.
    """


class SchedulerError(ThreadingError):
    """The scheduler was asked to make an impossible decision."""


class TraceError(InspectorError):
    """Base class for errors raised by the Intel PT model."""


class PacketDecodeError(TraceError):
    """The PT decoder encountered a malformed or truncated packet stream."""


class TraceGapError(TraceError):
    """Trace data was lost (AUX buffer overflow in full-trace mode)."""


class PerfError(InspectorError):
    """Errors raised by the perf-utility layer."""


class ProvenanceError(InspectorError):
    """Errors raised by the provenance core (CPG construction or queries)."""


class StoreError(ProvenanceError):
    """Errors raised by the persistent provenance store (corrupt segments,
    missing manifests, or queries against nodes the store never ingested)."""


class StoreUnreachableError(StoreError):
    """A store server could not be reached after exhausting every retry.

    Raised only for transport-level failure (connect refused, connection
    dropped without a reply); a server that *answered* with an error keeps
    raising plain :class:`StoreError`.  The distinction is what lets a
    cluster router treat a dead shard as a routing event (fail over to a
    replica, report a degraded read) instead of a query error."""


class SnapshotError(InspectorError):
    """Errors raised by the consistent-snapshot facility."""


class PolicyViolationError(InspectorError):
    """A DIFT policy check failed (tainted data reached a restricted sink)."""

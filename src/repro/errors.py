"""Exception hierarchy shared by every subsystem of the INSPECTOR reproduction.

Keeping the exceptions in one module lets callers catch coarse categories
(``InspectorError``) or precise conditions (``DeadlockError``) without
importing the subsystem that raises them.
"""

from __future__ import annotations


class InspectorError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class MemoryError_(InspectorError):
    """Base class for errors raised by the memory subsystem.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class InvalidAddressError(MemoryError_):
    """An address falls outside every mapped region of the address space."""


class ProtectionError(MemoryError_):
    """An access violates page protection and no fault handler is installed."""


class AllocationError(MemoryError_):
    """The simulated allocator cannot satisfy a request."""


class DoubleFreeError(AllocationError):
    """An address was freed twice or was never allocated."""


class ThreadingError(InspectorError):
    """Base class for errors raised by the simulated threading runtime."""


class DeadlockError(ThreadingError):
    """No simulated process is runnable but some are still blocked."""


class InvalidSyncStateError(ThreadingError):
    """A synchronization primitive was used incorrectly.

    Examples: unlocking a mutex the caller does not hold, joining a thread
    twice, or re-initialising a barrier while threads are waiting on it.
    """


class SchedulerError(ThreadingError):
    """The scheduler was asked to make an impossible decision."""


class TraceError(InspectorError):
    """Base class for errors raised by the Intel PT model."""


class PacketDecodeError(TraceError):
    """The PT decoder encountered a malformed or truncated packet stream."""


class TraceGapError(TraceError):
    """Trace data was lost (AUX buffer overflow in full-trace mode)."""


class PerfError(InspectorError):
    """Errors raised by the perf-utility layer."""


class ProvenanceError(InspectorError):
    """Errors raised by the provenance core (CPG construction or queries)."""


class StoreError(ProvenanceError):
    """Errors raised by the persistent provenance store (corrupt segments,
    missing manifests, or queries against nodes the store never ingested).

    Attributes:
        code: Stable machine-readable error code a store server puts in its
            error replies, so clients can branch on the *kind* of failure
            without string matching.  ``"bad_request"`` covers the generic
            case (unknown runs, malformed parameters); subclasses override.
    """

    code: str = "bad_request"


class CorruptSegmentError(StoreError):
    """A segment's bytes failed an integrity check (or were already
    quarantined for failing one).

    Raised by the store's read path when a segment frame's checksum does
    not match, the file is missing or truncated, or the segment is marked
    quarantined in the manifest.  Queries that can answer without the
    segment catch this and degrade (reporting the segment through their
    :class:`~repro.store.cache.ReadScope`); queries that *need* it let it
    propagate.

    Attributes:
        segment_id: The damaged segment (``None`` when unknown).
        quarantined: Whether the segment was already quarantined before
            this access (vs. freshly detected corruption).
    """

    def __init__(self, message: str, segment_id=None, quarantined: bool = False) -> None:
        super().__init__(message)
        self.segment_id = segment_id
        self.quarantined = quarantined

    @property
    def code(self) -> str:  # type: ignore[override]
        return "quarantined" if self.quarantined else "corrupt_segment"


class StoreReadOnlyError(StoreError):
    """A write op reached a store server that was not started writable."""

    code = "read_only"


class StoreUnreachableError(StoreError):
    """A store server could not be reached after exhausting every retry.

    Raised only for transport-level failure (connect refused, connection
    dropped without a reply); a server that *answered* with an error keeps
    raising plain :class:`StoreError`.  The distinction is what lets a
    cluster router treat a dead shard as a routing event (fail over to a
    replica, report a degraded read) instead of a query error."""


class SnapshotError(InspectorError):
    """Errors raised by the consistent-snapshot facility."""


class PolicyViolationError(InspectorError):
    """A DIFT policy check failed (tainted data reached a restricted sink)."""

"""An LZ77-style byte compressor standing in for lz4.

The paper compresses the perf-written provenance log with lz4 and reports
ratios between 6x and 37x.  The reproduction needs the same capability --
the Figure 9 harness compresses the simulated trace to report a ratio -- so
this module implements a small, dependency-free LZ77 compressor with a
greedy hash-chain match finder and a token format inspired by the LZ4 block
format (literal run + match copy).  It is not wire-compatible with lz4 but
occupies the same point in the design space: byte-oriented, fast to decode,
window-limited matching, no entropy coding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Minimum match length worth encoding (same as LZ4).
MIN_MATCH = 4

#: Sliding-window size for matches (64 KiB, the LZ4 maximum offset).
WINDOW_SIZE = 64 * 1024

#: Token layout: a literal-run length followed by an optional match.
_LITERAL_CAP = 255


@dataclass
class CompressionResult:
    """Outcome of compressing one buffer.

    Attributes:
        compressed_size: Size of the compressed representation in bytes
            (extrapolated when ``sampled`` is true).
        original_size: Length of the input.
        sampled: Whether only a prefix of the input was compressed and the
            ratio extrapolated (used by the benchmarks on very large logs).
        compressed: The compressed bytes of whatever was actually
            compressed (the full input, or the sampled prefix).
    """

    compressed_size: int
    original_size: int
    sampled: bool = False
    compressed: bytes = b""

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed); 1.0 for empty input."""
        if self.compressed_size == 0:
            return 1.0
        return self.original_size / self.compressed_size


def compress(data: bytes) -> bytes:
    """Compress ``data`` with the LZ77 scheme described in the module docstring."""
    if not data:
        return b""
    out = bytearray()
    literals = bytearray()
    # Hash table of 4-byte prefixes -> most recent position.
    table: dict = {}
    position = 0
    length = len(data)
    view = memoryview(data)

    def flush_literals() -> None:
        start = 0
        while start < len(literals):
            chunk = literals[start : start + _LITERAL_CAP]
            out.append(len(chunk))  # literal run token (1..255)
            out.append(0)  # no match in this token
            out.extend(chunk)
            start += _LITERAL_CAP

    while position < length:
        if position + MIN_MATCH <= length:
            key = bytes(view[position : position + MIN_MATCH])
            candidate = table.get(key)
            table[key] = position
        else:
            candidate = None
        match_length = 0
        if candidate is not None and position - candidate <= WINDOW_SIZE:
            limit = length - position
            while match_length < limit and data[candidate + match_length] == data[position + match_length]:
                match_length += 1
                if match_length >= 254 + MIN_MATCH:
                    break
        if match_length >= MIN_MATCH:
            # Emit any pending literals first.
            if literals:
                flush_literals()
                literals.clear()
            offset = position - candidate
            out.append(0)  # zero literals in this token
            out.append(match_length - MIN_MATCH + 1)  # match token (1..252)
            out.extend(offset.to_bytes(2, "little"))
            position += match_length
        else:
            literals.append(data[position])
            position += 1
            if len(literals) == _LITERAL_CAP:
                flush_literals()
                literals.clear()
    if literals:
        flush_literals()
    return bytes(out)


def decompress(payload: bytes) -> bytes:
    """Invert :func:`compress`.

    Raises:
        ValueError: If the payload is malformed.
    """
    out = bytearray()
    cursor = 0
    length = len(payload)
    while cursor < length:
        if cursor + 2 > length:
            raise ValueError("truncated token header")
        literal_len = payload[cursor]
        match_token = payload[cursor + 1]
        cursor += 2
        if literal_len:
            if cursor + literal_len > length:
                raise ValueError("truncated literal run")
            out.extend(payload[cursor : cursor + literal_len])
            cursor += literal_len
        if match_token:
            if cursor + 2 > length:
                raise ValueError("truncated match offset")
            offset = int.from_bytes(payload[cursor : cursor + 2], "little")
            cursor += 2
            match_length = match_token + MIN_MATCH - 1
            if offset == 0 or offset > len(out):
                raise ValueError(f"invalid match offset {offset}")
            start = len(out) - offset
            for index in range(match_length):
                out.append(out[start + index])
    return bytes(out)


def compression_ratio(data: bytes, sample_limit: Optional[int] = None) -> CompressionResult:
    """Compress ``data`` (or a prefix) and report the achieved ratio.

    Args:
        data: The buffer to compress.
        sample_limit: When given and smaller than ``len(data)``, only the
            first ``sample_limit`` bytes are compressed and the ratio is
            extrapolated to the full buffer.  The pure-Python match finder
            is the slow piece of this reproduction, so the Figure 9 harness
            samples multi-megabyte logs instead of compressing them whole.
    """
    if sample_limit is not None and len(data) > sample_limit > 0:
        sample = data[:sample_limit]
        compressed = compress(sample)
        sample_ratio = len(sample) / len(compressed) if compressed else 1.0
        estimated = int(round(len(data) / sample_ratio)) if sample_ratio else len(data)
        return CompressionResult(
            compressed_size=max(estimated, 1),
            original_size=len(data),
            sampled=True,
            compressed=compressed,
        )
    compressed = compress(data)
    return CompressionResult(
        compressed_size=len(compressed),
        original_size=len(data),
        compressed=compressed,
    )

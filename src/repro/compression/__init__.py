"""The lz4-equivalent compressor used to report provenance-log compressibility.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.compression.lz import (
    MIN_MATCH,
    WINDOW_SIZE,
    CompressionResult,
    compress,
    compression_ratio,
    decompress,
)

__all__ = [
    "MIN_MATCH",
    "WINDOW_SIZE",
    "CompressionResult",
    "compress",
    "compression_ratio",
    "decompress",
]

"""The lz4-equivalent compressor used to report provenance-log compressibility."""

from repro.compression.lz import (
    MIN_MATCH,
    WINDOW_SIZE,
    CompressionResult,
    compress,
    compression_ratio,
    decompress,
)

__all__ = [
    "MIN_MATCH",
    "WINDOW_SIZE",
    "CompressionResult",
    "compress",
    "compression_ratio",
    "decompress",
]

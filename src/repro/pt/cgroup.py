"""A minimal cgroup model used to scope PT tracing to one application.

INSPECTOR turns threads into processes whose pids are not known in advance,
so it creates a dedicated ``perf_event`` cgroup for the application and
lets perf filter on it: every process forked by a member is automatically a
member too.  This class models exactly that membership rule.
"""

from __future__ import annotations

from typing import Set


class Cgroup:
    """A named group of process ids with inherit-on-fork semantics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._members: Set[int] = set()

    def add(self, pid: int) -> None:
        """Add ``pid`` to the cgroup."""
        self._members.add(pid)

    def add_child(self, parent_pid: int, child_pid: int) -> bool:
        """Add ``child_pid`` if its parent is a member (fork inheritance).

        Returns:
            Whether the child was added.
        """
        if parent_pid in self._members:
            self._members.add(child_pid)
            return True
        return False

    def remove(self, pid: int) -> None:
        """Remove ``pid`` from the cgroup (process exit keeps it by default)."""
        self._members.discard(pid)

    def contains(self, pid: int) -> bool:
        """Whether ``pid`` is a member."""
        return pid in self._members

    def members(self) -> Set[int]:
        """A copy of the current membership."""
        return set(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, pid: int) -> bool:
        return self.contains(pid)

"""The PT decoder: from packet bytes back to a branch trace.

This is the reproduction's stand-in for the Intel Processor Trace Decoder
Library that perf integrates.  It parses the packet stream, undoes last-IP
compression of TIP packets, notes PSB resynchronisation points and OVF
gaps, and -- when given the side-band information real decoders obtain from
the application binaries (the image map plus the per-process branch-site
log) -- reconstructs the full sequence of branch events that produced the
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import PacketDecodeError
from repro.pt.binary_map import ImageMap
from repro.pt.packets import (
    FUPPacket,
    OVFPacket,
    PSBPacket,
    TIPPacket,
    TNTPacket,
    decode_packets,
    decompress_ip,
)


@dataclass
class DecodedTrace:
    """The information recovered from one process's packet stream.

    Attributes:
        tnt_bits: Conditional-branch outcomes in trace order.
        tip_targets: Fully decompressed indirect-branch targets in order.
        psb_count: Number of synchronisation points seen.
        overflow_count: Number of OVF markers (trace gaps).
        packet_count: Total packets decoded.
    """

    tnt_bits: List[bool] = field(default_factory=list)
    tip_targets: List[int] = field(default_factory=list)
    psb_count: int = 0
    overflow_count: int = 0
    packet_count: int = 0

    @property
    def branch_count(self) -> int:
        """Total number of branch outcomes recovered."""
        return len(self.tnt_bits) + len(self.tip_targets)

    @property
    def has_gaps(self) -> bool:
        """Whether the trace lost data to AUX overflow."""
        return self.overflow_count > 0


@dataclass(frozen=True)
class ReconstructedBranch:
    """One branch event mapped back onto the program.

    Attributes:
        site: The branch-site instruction pointer (from the side-band log).
        taken: Branch outcome.
        is_indirect: Whether it was an indirect branch.
        image: Name of the binary image containing the site, if resolvable.
    """

    site: int
    taken: bool
    is_indirect: bool
    image: Optional[str] = None


class PTDecoder:
    """Decodes raw AUX bytes into a :class:`DecodedTrace`."""

    def decode(self, data: bytes) -> DecodedTrace:
        """Decode ``data`` (the drained AUX contents of one process).

        Raises:
            PacketDecodeError: If the stream is malformed (not merely
                truncated by overflow, which is reported as a gap instead).
        """
        trace = DecodedTrace()
        last_ip: Optional[int] = None
        for packet in decode_packets(data):
            trace.packet_count += 1
            if isinstance(packet, TNTPacket):
                trace.tnt_bits.extend(packet.bits)
            elif isinstance(packet, TIPPacket):
                payload = packet.ip.to_bytes(8, "little")[: packet.compressed_bytes]
                ip = decompress_ip(last_ip, payload)
                trace.tip_targets.append(ip)
                last_ip = ip
            elif isinstance(packet, FUPPacket):
                last_ip = packet.ip
            elif isinstance(packet, PSBPacket):
                trace.psb_count += 1
                last_ip = None
            elif isinstance(packet, OVFPacket):
                trace.overflow_count += 1
        return trace

    def decode_lenient(self, data: bytes) -> DecodedTrace:
        """Decode a possibly truncated stream (snapshot-mode buffers).

        Snapshot-mode buffers may begin or end mid-packet after wrapping;
        a real decoder skips to the next PSB.  We approximate by retrying
        from successive offsets until the remainder parses, counting one
        gap if anything had to be skipped.
        """
        for offset in range(len(data)):
            try:
                trace = self.decode(data[offset:])
            except PacketDecodeError:
                continue
            if offset:
                trace.overflow_count += 1
            return trace
        return DecodedTrace(overflow_count=1 if data else 0)


def reconstruct_branches(
    trace: DecodedTrace,
    branch_sites: Sequence[Tuple[int, bool]],
    image_map: Optional[ImageMap] = None,
) -> List[ReconstructedBranch]:
    """Map a decoded trace back onto program branch sites.

    Real decoders walk the disassembled binary: every conditional branch
    encountered consumes the next TNT bit and every indirect branch
    consumes the next TIP target.  The reproduction has no disassembler, so
    the "binary" is the side-band branch-site log recorded by the image
    map layer: a sequence of ``(site_ip, is_indirect)`` tuples in program
    order.  Reconstruction therefore consumes TNT bits and TIP targets in
    exactly the same way the real decode would.

    Args:
        trace: Decoded packet stream.
        branch_sites: Program-order branch sites ``(site_ip, is_indirect)``.
        image_map: Optional image map used to name the containing binary.

    Returns:
        The reconstructed branch events (shorter than ``branch_sites`` if
        the trace has gaps).
    """
    result: List[ReconstructedBranch] = []
    tnt_cursor = 0
    tip_cursor = 0
    for site, is_indirect in branch_sites:
        image = image_map.image_for(site).name if image_map and image_map.image_for(site) else None
        if is_indirect:
            if tip_cursor >= len(trace.tip_targets):
                break
            target = trace.tip_targets[tip_cursor]
            tip_cursor += 1
            result.append(
                ReconstructedBranch(site=target, taken=True, is_indirect=True, image=image)
            )
        else:
            if tnt_cursor >= len(trace.tnt_bits):
                break
            taken = trace.tnt_bits[tnt_cursor]
            tnt_cursor += 1
            result.append(
                ReconstructedBranch(site=site, taken=taken, is_indirect=False, image=image)
            )
    return result

"""The Intel Processor Trace substrate.

Packet model, per-process encoder, AUX ring buffer, decoder, loaded-image
tracking, the PT PMU, and the cgroup filter used to scope tracing to one
application.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.pt.aux_buffer import DEFAULT_AUX_SIZE, AuxRingBuffer, AuxStats
from repro.pt.binary_map import ImageMap, ImageRecord
from repro.pt.cgroup import Cgroup
from repro.pt.decoder import DecodedTrace, PTDecoder, ReconstructedBranch, reconstruct_branches
from repro.pt.encoder import DEFAULT_PSB_PERIOD, EncoderStats, PTEncoder
from repro.pt.packets import (
    MAX_TNT_BITS,
    FUPPacket,
    ModePacket,
    OVFPacket,
    Packet,
    PadPacket,
    PSBEndPacket,
    PSBPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
    decode_packets,
    decompress_ip,
    ip_compression,
)
from repro.pt.pmu import IntelPTPMU, PMUConfig

__all__ = [
    "DEFAULT_AUX_SIZE",
    "AuxRingBuffer",
    "AuxStats",
    "ImageMap",
    "ImageRecord",
    "Cgroup",
    "DecodedTrace",
    "PTDecoder",
    "ReconstructedBranch",
    "reconstruct_branches",
    "DEFAULT_PSB_PERIOD",
    "EncoderStats",
    "PTEncoder",
    "MAX_TNT_BITS",
    "FUPPacket",
    "ModePacket",
    "OVFPacket",
    "Packet",
    "PadPacket",
    "PSBEndPacket",
    "PSBPacket",
    "TIPPacket",
    "TNTPacket",
    "TSCPacket",
    "decode_packets",
    "decompress_ip",
    "ip_compression",
    "IntelPTPMU",
    "PMUConfig",
]

"""The AUX area: the ring buffer Intel PT trace data lands in.

perf exposes PT data through a memory-mapped ring buffer (the "AUX area").
Two modes matter for INSPECTOR:

* **full-trace mode** -- the kernel never overwrites data the consumer has
  not collected yet; if the consumer (``perf record``) cannot keep up, new
  data is dropped and the trace has *gaps* (the paper observes this for
  fast-producing applications).
* **snapshot mode** -- the buffer is continuously overwritten and a signal
  (SIGUSR2) freezes a snapshot of the most recent data; INSPECTOR's
  consistent-snapshot facility is built on this mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Default AUX buffer size (bytes); perf's default AUX mmap is a few MiB.
DEFAULT_AUX_SIZE = 4 * 1024 * 1024


@dataclass
class AuxStats:
    """Counters describing traffic through one AUX buffer.

    Attributes:
        bytes_written: Bytes the PMU produced (whether or not they fit).
        bytes_stored: Bytes actually stored in the buffer.
        bytes_lost: Bytes dropped because the consumer was too slow
            (full-trace mode only).
        bytes_overwritten: Bytes overwritten by newer data (snapshot mode).
        drains: Number of times the consumer drained the buffer.
        overflows: Number of distinct overflow episodes.
    """

    bytes_written: int = 0
    bytes_stored: int = 0
    bytes_lost: int = 0
    bytes_overwritten: int = 0
    drains: int = 0
    overflows: int = 0


class AuxRingBuffer:
    """A bounded ring buffer holding encoded PT packets.

    Args:
        size: Capacity in bytes.
        snapshot_mode: ``True`` for overwrite (snapshot) mode, ``False`` for
            full-trace mode with data loss on overflow.
    """

    def __init__(self, size: int = DEFAULT_AUX_SIZE, snapshot_mode: bool = False) -> None:
        if size <= 0:
            raise ValueError(f"AUX buffer size must be positive, got {size}")
        self.size = size
        self.snapshot_mode = snapshot_mode
        self.stats = AuxStats()
        self._chunks: List[bytes] = []
        self._stored = 0
        self._in_overflow = False

    @property
    def used(self) -> int:
        """Bytes currently stored and not yet drained."""
        return self._stored

    @property
    def free(self) -> int:
        """Bytes of remaining capacity."""
        return self.size - self._stored

    def write(self, data: bytes) -> int:
        """Append ``data`` produced by the PMU.

        Returns:
            The number of bytes actually stored.  In full-trace mode the
            remainder is lost (and accounted); in snapshot mode old data is
            overwritten to make room.
        """
        if not data:
            return 0
        self.stats.bytes_written += len(data)
        if len(data) <= self.free:
            self._chunks.append(bytes(data))
            self._stored += len(data)
            self.stats.bytes_stored += len(data)
            self._in_overflow = False
            return len(data)
        if self.snapshot_mode:
            self._make_room(len(data))
            kept = data[-self.size :]
            self._chunks.append(bytes(kept))
            self._stored += len(kept)
            self.stats.bytes_stored += len(kept)
            return len(kept)
        # Full-trace mode: store what fits, drop the rest.
        fitting = data[: self.free]
        lost = len(data) - len(fitting)
        if fitting:
            self._chunks.append(bytes(fitting))
            self._stored += len(fitting)
            self.stats.bytes_stored += len(fitting)
        self.stats.bytes_lost += lost
        if lost and not self._in_overflow:
            self.stats.overflows += 1
            self._in_overflow = True
        return len(fitting)

    def _make_room(self, needed: int) -> None:
        """Drop the oldest chunks until ``needed`` bytes fit (snapshot mode)."""
        while self._chunks and self.free < needed:
            oldest = self._chunks.pop(0)
            if len(oldest) <= needed - self.free:
                self._stored -= len(oldest)
                self.stats.bytes_overwritten += len(oldest)
            else:
                keep = len(oldest) - (needed - self.free)
                self.stats.bytes_overwritten += len(oldest) - keep
                self._stored -= len(oldest) - keep
                self._chunks.insert(0, oldest[-keep:])
                break

    def drain(self) -> bytes:
        """Remove and return everything currently stored (consumer read)."""
        payload = b"".join(self._chunks)
        self._chunks.clear()
        self._stored = 0
        self._in_overflow = False
        self.stats.drains += 1
        return payload

    def peek(self) -> bytes:
        """Return the stored contents without consuming them (snapshot read)."""
        return b"".join(self._chunks)

    @property
    def has_gaps(self) -> bool:
        """Whether data was lost in full-trace mode."""
        return self.stats.bytes_lost > 0

"""The Intel PT PMU as exposed through the perf-event interface.

On Linux the PT hardware appears as a PMU: ``perf_event_open`` returns a
file descriptor per traced process, the AUX area is mapped per event, and a
cgroup filter decides which processes are traced.  This module models that
surface: the PMU owns one encoder + AUX buffer per traced process, honours
the cgroup filter, and hands the drained AUX data to ``perf record``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import PerfError
from repro.pt.aux_buffer import DEFAULT_AUX_SIZE, AuxRingBuffer
from repro.pt.cgroup import Cgroup
from repro.pt.encoder import DEFAULT_PSB_PERIOD, PTEncoder


@dataclass
class PMUConfig:
    """Configuration of the PT PMU.

    Attributes:
        aux_size: Per-process AUX buffer capacity in bytes.
        snapshot_mode: Whether AUX buffers run in overwrite (snapshot) mode.
        psb_period: Bytes between PSB+ groups.
    """

    aux_size: int = DEFAULT_AUX_SIZE
    snapshot_mode: bool = False
    psb_period: int = DEFAULT_PSB_PERIOD


class IntelPTPMU:
    """The PT performance-monitoring unit.

    Args:
        config: PMU configuration.
        cgroup: Optional cgroup filter; when given, only member processes
            are traced (attach requests for non-members are ignored, like
            perf's cgroup filtering).
    """

    def __init__(self, config: Optional[PMUConfig] = None, cgroup: Optional[Cgroup] = None) -> None:
        self.config = config if config is not None else PMUConfig()
        self.cgroup = cgroup
        self._encoders: Dict[int, PTEncoder] = {}
        self._buffers: Dict[int, AuxRingBuffer] = {}

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #

    def attach(self, pid: int) -> Optional[PTEncoder]:
        """Start tracing process ``pid`` (if the cgroup filter allows it).

        Returns:
            The process's encoder, or ``None`` when the process is filtered
            out by the cgroup.
        """
        if self.cgroup is not None and pid not in self.cgroup:
            return None
        if pid in self._encoders:
            return self._encoders[pid]
        aux = AuxRingBuffer(self.config.aux_size, snapshot_mode=self.config.snapshot_mode)
        encoder = PTEncoder(pid, aux, psb_period=self.config.psb_period)
        self._buffers[pid] = aux
        self._encoders[pid] = encoder
        return encoder

    def detach(self, pid: int) -> None:
        """Stop tracing ``pid`` (its remaining AUX data stays readable)."""
        encoder = self._encoders.get(pid)
        if encoder is not None:
            encoder.disable()

    def encoder(self, pid: int) -> PTEncoder:
        """Return the encoder of a traced process.

        Raises:
            PerfError: If ``pid`` was never attached.
        """
        try:
            return self._encoders[pid]
        except KeyError as exc:
            raise PerfError(f"process {pid} is not traced by this PMU") from exc

    def aux_buffer(self, pid: int) -> AuxRingBuffer:
        """Return the AUX buffer of a traced process."""
        try:
            return self._buffers[pid]
        except KeyError as exc:
            raise PerfError(f"process {pid} has no AUX buffer") from exc

    def traced_pids(self) -> List[int]:
        """Pids currently (or previously) traced, in attach order."""
        return list(self._encoders)

    # ------------------------------------------------------------------ #
    # Aggregate statistics (Figure 9 inputs)
    # ------------------------------------------------------------------ #

    def total_bytes_emitted(self) -> int:
        """Encoded trace bytes produced across every traced process."""
        return sum(encoder.stats.bytes_emitted for encoder in self._encoders.values())

    def total_branches(self) -> int:
        """Branch events (conditional + indirect) recorded across processes."""
        return sum(
            encoder.stats.conditional_branches + encoder.stats.indirect_branches
            for encoder in self._encoders.values()
        )

    def total_bytes_lost(self) -> int:
        """Bytes lost to AUX overflow across every traced process."""
        return sum(buffer.stats.bytes_lost for buffer in self._buffers.values())

    def flush_all(self) -> None:
        """Flush every encoder's pending TNT bits (end of run)."""
        for encoder in self._encoders.values():
            encoder.flush()

"""Intel Processor Trace packet model.

Intel PT compresses control-flow information into a handful of packet
types: TNT packets carry the taken/not-taken outcomes of conditional
branches (up to 47 outcomes in an 8-byte "long TNT"), TIP packets carry the
targets of indirect branches and returns with last-IP compression, PSB/
PSBEND bracket periodic synchronization points the decoder can resynchronise
at, OVF marks data lost to buffer overflow, and TSC/MODE/PAD carry timing,
mode, and alignment information.

This module models those packets with a compact, self-consistent wire
format whose *sizes* match the real encoding closely (1 byte per ~6
branches for short TNT, 8 bytes per 47 branches for long TNT, 2-9 bytes per
TIP depending on IP compression, 16-byte PSB), so that the space-overhead
numbers of Figure 9 are driven by the same mechanics as on real hardware.
The exact bit layout is our own: nothing downstream depends on Intel's bit
ordering, only on sizes and on lossless decode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import PacketDecodeError

# Wire tags (one byte each).
TAG_PAD = 0x00
TAG_TNT = 0x04
TAG_TIP = 0x0D
TAG_FUP = 0x1D
TAG_TSC = 0x19
TAG_PSBEND = 0x23
TAG_PSB = 0x82
TAG_MODE = 0x99
TAG_OVF = 0xF3

#: Maximum number of taken/not-taken bits carried by one (long) TNT packet.
MAX_TNT_BITS = 47

#: Number of bits carried by a short TNT packet (single payload byte).
SHORT_TNT_BITS = 6

#: Size of a PSB packet in bytes (matches the real 16-byte PSB).
PSB_SIZE = 16


class Packet:
    """Base class for every PT packet."""

    def encode(self) -> bytes:
        """Return the wire representation of the packet."""
        raise NotImplementedError

    @property
    def size(self) -> int:
        """Encoded size in bytes."""
        return len(self.encode())


@dataclass(frozen=True)
class PadPacket(Packet):
    """A single alignment byte."""

    def encode(self) -> bytes:
        return bytes([TAG_PAD])


@dataclass(frozen=True)
class PSBPacket(Packet):
    """Periodic stream synchronization point (16 bytes)."""

    def encode(self) -> bytes:
        return bytes([TAG_PSB]) + bytes([TAG_PSB]) * (PSB_SIZE - 1)


@dataclass(frozen=True)
class PSBEndPacket(Packet):
    """Marks the end of a PSB+ header group (2 bytes)."""

    def encode(self) -> bytes:
        return bytes([TAG_PSBEND, 0x00])


@dataclass(frozen=True)
class OVFPacket(Packet):
    """Signals that trace data was dropped (AUX buffer overflow)."""

    def encode(self) -> bytes:
        return bytes([TAG_OVF, 0x00])


@dataclass(frozen=True)
class TSCPacket(Packet):
    """A 56-bit timestamp (8 bytes on the wire)."""

    timestamp: int = 0

    def encode(self) -> bytes:
        return bytes([TAG_TSC]) + int(self.timestamp & (2**56 - 1)).to_bytes(7, "little")


@dataclass(frozen=True)
class ModePacket(Packet):
    """Execution-mode information (2 bytes); we record only a mode byte."""

    mode: int = 0x01  # 64-bit mode

    def encode(self) -> bytes:
        return bytes([TAG_MODE, self.mode & 0xFF])


@dataclass(frozen=True)
class TNTPacket(Packet):
    """Taken/not-taken bits for up to 47 conditional branches.

    Attributes:
        bits: Branch outcomes, oldest first (``True`` = taken).
    """

    bits: Tuple[bool, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.bits) <= MAX_TNT_BITS:
            raise PacketDecodeError(
                f"TNT packet must carry 1..{MAX_TNT_BITS} bits, got {len(self.bits)}"
            )

    def encode(self) -> bytes:
        count = len(self.bits)
        payload_len = (count + 7) // 8
        value = 0
        for index, bit in enumerate(self.bits):
            if bit:
                value |= 1 << index
        return bytes([TAG_TNT, count]) + value.to_bytes(payload_len, "little")


@dataclass(frozen=True)
class TIPPacket(Packet):
    """Target of an indirect branch, call, or return.

    The target instruction pointer is compressed against the previously
    emitted IP: only the low bytes that differ are transmitted (0, 2, 4, 6,
    or 8 bytes), exactly the trade-off the real last-IP compression makes.

    Attributes:
        ip: The full target instruction pointer.
        compressed_bytes: How many low-order bytes are on the wire.
    """

    ip: int
    compressed_bytes: int = 8

    def __post_init__(self) -> None:
        if self.compressed_bytes not in (0, 2, 4, 6, 8):
            raise PacketDecodeError(
                f"TIP compression must be one of 0/2/4/6/8 bytes, got {self.compressed_bytes}"
            )

    def encode(self) -> bytes:
        payload = self.ip.to_bytes(8, "little")[: self.compressed_bytes]
        return bytes([TAG_TIP, self.compressed_bytes]) + payload


@dataclass(frozen=True)
class FUPPacket(Packet):
    """Flow-update packet: the source IP of an asynchronous event."""

    ip: int

    def encode(self) -> bytes:
        return bytes([TAG_FUP]) + self.ip.to_bytes(8, "little")


def ip_compression(previous_ip: Optional[int], ip: int) -> int:
    """Return how many low bytes of ``ip`` must be sent given ``previous_ip``.

    This is the last-IP compression of real PT: bytes that match the
    previously emitted IP are elided.
    """
    if previous_ip is None:
        return 8
    if previous_ip == ip:
        return 0
    xor = previous_ip ^ ip
    if xor < (1 << 16):
        return 2
    if xor < (1 << 32):
        return 4
    if xor < (1 << 48):
        return 6
    return 8


def decompress_ip(previous_ip: Optional[int], payload: bytes) -> int:
    """Reconstruct a full IP from its compressed low bytes and the previous IP."""
    if len(payload) == 0:
        if previous_ip is None:
            raise PacketDecodeError("0-byte TIP payload without a previous IP")
        return previous_ip
    if len(payload) == 8 or previous_ip is None:
        return int.from_bytes(payload.ljust(8, b"\x00"), "little")
    low = int.from_bytes(payload, "little")
    keep_mask = ~((1 << (8 * len(payload))) - 1)
    return (previous_ip & keep_mask) | low


def decode_packets(data: bytes) -> List[Packet]:
    """Decode a raw byte stream into a list of packets.

    Raises:
        PacketDecodeError: On truncated or unrecognised data.
    """
    packets: List[Packet] = []
    cursor = 0
    length = len(data)
    while cursor < length:
        tag = data[cursor]
        if tag == TAG_PAD:
            packets.append(PadPacket())
            cursor += 1
        elif tag == TAG_PSB:
            if cursor + PSB_SIZE > length:
                raise PacketDecodeError("truncated PSB packet")
            packets.append(PSBPacket())
            cursor += PSB_SIZE
        elif tag == TAG_PSBEND:
            _require(length, cursor, 2)
            packets.append(PSBEndPacket())
            cursor += 2
        elif tag == TAG_OVF:
            _require(length, cursor, 2)
            packets.append(OVFPacket())
            cursor += 2
        elif tag == TAG_TSC:
            _require(length, cursor, 8)
            timestamp = int.from_bytes(data[cursor + 1 : cursor + 8], "little")
            packets.append(TSCPacket(timestamp))
            cursor += 8
        elif tag == TAG_MODE:
            _require(length, cursor, 2)
            packets.append(ModePacket(data[cursor + 1]))
            cursor += 2
        elif tag == TAG_TNT:
            _require(length, cursor, 2)
            count = data[cursor + 1]
            if not 1 <= count <= MAX_TNT_BITS:
                raise PacketDecodeError(f"invalid TNT bit count {count}")
            payload_len = (count + 7) // 8
            _require(length, cursor, 2 + payload_len)
            value = int.from_bytes(data[cursor + 2 : cursor + 2 + payload_len], "little")
            bits = tuple(bool(value & (1 << index)) for index in range(count))
            packets.append(TNTPacket(bits))
            cursor += 2 + payload_len
        elif tag == TAG_TIP:
            _require(length, cursor, 2)
            compressed = data[cursor + 1]
            if compressed not in (0, 2, 4, 6, 8):
                raise PacketDecodeError(f"invalid TIP compression {compressed}")
            _require(length, cursor, 2 + compressed)
            payload = bytes(data[cursor + 2 : cursor + 2 + compressed])
            # The caller resolves last-IP decompression; store raw low bytes
            # in the ip field for now by padding with zeros.
            packets.append(TIPPacket(int.from_bytes(payload.ljust(8, b"\x00"), "little"), compressed))
            cursor += 2 + compressed
        elif tag == TAG_FUP:
            _require(length, cursor, 9)
            packets.append(FUPPacket(int.from_bytes(data[cursor + 1 : cursor + 9], "little")))
            cursor += 9
        else:
            raise PacketDecodeError(f"unknown packet tag {tag:#x} at offset {cursor}")
    return packets


def _require(length: int, cursor: int, needed: int) -> None:
    if cursor + needed > length:
        raise PacketDecodeError(f"truncated packet at offset {cursor}")

"""Tracking of loaded binary images (the decode side-band).

To map a PT trace back onto the program, the decoder needs to know which
binary occupies which address range -- perf gets this from MMAP events and
INSPECTOR additionally tracks ``mmap`` calls made by the application.  This
module models that: every "executable image" (in our case a workload's
synthetic text segment) registers its base and size, and lookups resolve an
instruction pointer to the containing image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ImageRecord:
    """One loaded executable image.

    Attributes:
        name: Image name (e.g. ``"workload:histogram"`` or ``"libinspector.so"``).
        base: Load address of the image.
        size: Size of the mapped text range in bytes.
        pid: Process the mapping belongs to (``None`` for global images).
    """

    name: str
    base: int
    size: int
    pid: Optional[int] = None

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, ip: int) -> bool:
        """Whether ``ip`` falls inside this image."""
        return self.base <= ip < self.end


class ImageMap:
    """The set of loaded images plus the per-process branch-site side-band.

    Besides image records, the map stores the program-order log of branch
    sites per process.  Real decoders recover that information by walking
    the disassembled binary alongside the packet stream; our synthetic
    workloads have no machine code, so the branch-site log *is* the
    reproduction's binary: it says where conditional and indirect branches
    occur, and the decoder consumes TNT bits / TIP targets against it.
    """

    def __init__(self) -> None:
        self._images: List[ImageRecord] = []
        self._branch_sites: Dict[int, List[Tuple[int, bool]]] = {}

    # ------------------------------------------------------------------ #
    # Image registration (perf MMAP events)
    # ------------------------------------------------------------------ #

    def add_image(self, name: str, base: int, size: int, pid: Optional[int] = None) -> ImageRecord:
        """Register a loaded image and return its record."""
        record = ImageRecord(name=name, base=base, size=size, pid=pid)
        self._images.append(record)
        return record

    def image_for(self, ip: int, pid: Optional[int] = None) -> Optional[ImageRecord]:
        """Return the image containing ``ip`` (preferring ``pid``-local maps)."""
        match = None
        for record in self._images:
            if record.contains(ip):
                if record.pid == pid:
                    return record
                if record.pid is None:
                    match = record
        return match

    def images(self) -> List[ImageRecord]:
        """All registered images in registration order."""
        return list(self._images)

    # ------------------------------------------------------------------ #
    # Branch-site side-band
    # ------------------------------------------------------------------ #

    def record_branch_site(self, pid: int, site: int, is_indirect: bool) -> None:
        """Append one branch site to the program-order log of ``pid``."""
        self._branch_sites.setdefault(pid, []).append((site, is_indirect))

    def branch_sites(self, pid: int) -> List[Tuple[int, bool]]:
        """Return the program-order branch-site log of ``pid``."""
        return list(self._branch_sites.get(pid, []))

    def branch_site_count(self, pid: Optional[int] = None) -> int:
        """Total number of recorded branch sites (for one pid or overall)."""
        if pid is not None:
            return len(self._branch_sites.get(pid, []))
        return sum(len(sites) for sites in self._branch_sites.values())

"""The PT packet encoder: one per traced process.

The hardware batches conditional-branch outcomes into TNT packets, emits a
TIP packet for every indirect branch or return (with last-IP compression),
and periodically inserts a PSB+ group (PSB, TSC, MODE, PSBEND) so decoders
can resynchronise mid-stream.  The encoder writes the packet bytes straight
into the process's AUX ring buffer, which is where ``perf record`` collects
them from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.pt.aux_buffer import AuxRingBuffer
from repro.pt.packets import (
    MAX_TNT_BITS,
    ModePacket,
    PSBEndPacket,
    PSBPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
    ip_compression,
)

#: Emit a PSB+ group after roughly this many packet bytes (the real default
#: PSB period is configurable in powers of two of bytes; 4 KiB here).
DEFAULT_PSB_PERIOD = 4096


@dataclass
class EncoderStats:
    """Counters kept per encoder (they feed Figure 9).

    Attributes:
        conditional_branches: TNT bits produced.
        indirect_branches: TIP packets produced.
        packets: Total packets emitted.
        bytes_emitted: Total encoded bytes (before any AUX loss).
        psb_groups: Number of PSB+ synchronisation groups emitted.
    """

    conditional_branches: int = 0
    indirect_branches: int = 0
    packets: int = 0
    bytes_emitted: int = 0
    psb_groups: int = 0


class PTEncoder:
    """Per-process Intel PT packet generator.

    Args:
        pid: The traced process id (for bookkeeping only).
        aux: The AUX ring buffer the encoded bytes are written to.
        psb_period: Approximate number of bytes between PSB+ groups.
    """

    def __init__(self, pid: int, aux: AuxRingBuffer, psb_period: int = DEFAULT_PSB_PERIOD) -> None:
        self.pid = pid
        self.aux = aux
        self.psb_period = psb_period
        self.stats = EncoderStats()
        self._pending_tnt: List[bool] = []
        self._last_ip: Optional[int] = None
        self._bytes_since_psb = 0
        self._timestamp = 0
        self._enabled = True
        # Every stream starts with a PSB+ group, like a real trace.
        self._emit_psb_group()

    # ------------------------------------------------------------------ #
    # Control
    # ------------------------------------------------------------------ #

    @property
    def enabled(self) -> bool:
        """Whether tracing is currently enabled for this process."""
        return self._enabled

    def enable(self) -> None:
        """(Re-)enable packet generation."""
        self._enabled = True

    def disable(self) -> None:
        """Disable packet generation (branches are simply not recorded)."""
        self.flush()
        self._enabled = False

    # ------------------------------------------------------------------ #
    # Branch events
    # ------------------------------------------------------------------ #

    def conditional_branch(self, taken: bool) -> None:
        """Record the outcome of a conditional branch (one TNT bit)."""
        if not self._enabled:
            return
        self.stats.conditional_branches += 1
        self._pending_tnt.append(bool(taken))
        if len(self._pending_tnt) >= MAX_TNT_BITS:
            self._flush_tnt()

    def conditional_branch_run(self, outcomes) -> None:
        """Record a run of conditional-branch outcomes (bulk TNT bits).

        Equivalent to calling :meth:`conditional_branch` once per outcome,
        but packs the pending bits in batches so that tight simulated loops
        (one branch per input element) stay cheap to encode.
        """
        if not self._enabled or not outcomes:
            return
        self.stats.conditional_branches += len(outcomes)
        pending = self._pending_tnt
        for taken in outcomes:
            pending.append(bool(taken))
            if len(pending) >= MAX_TNT_BITS:
                self._flush_tnt()
                pending = self._pending_tnt

    def indirect_branch(self, target_ip: int) -> None:
        """Record an indirect branch / call / return target (a TIP packet)."""
        if not self._enabled:
            return
        self.stats.indirect_branches += 1
        self._flush_tnt()
        compressed = ip_compression(self._last_ip, target_ip)
        self._emit(TIPPacket(ip=target_ip, compressed_bytes=compressed))
        self._last_ip = target_ip

    def flush(self) -> None:
        """Flush any buffered TNT bits (done at sync points and at exit)."""
        self._flush_tnt()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _flush_tnt(self) -> None:
        if not self._pending_tnt:
            return
        bits = tuple(self._pending_tnt)
        self._pending_tnt.clear()
        self._emit(TNTPacket(bits))

    def _emit(self, packet) -> None:
        encoded = packet.encode()
        self.stats.packets += 1
        self.stats.bytes_emitted += len(encoded)
        self._bytes_since_psb += len(encoded)
        self.aux.write(encoded)
        if self._bytes_since_psb >= self.psb_period:
            self._emit_psb_group()

    def _emit_psb_group(self) -> None:
        """Emit PSB, TSC, MODE, PSBEND -- the periodic resync group."""
        self._timestamp += 1
        group = (
            PSBPacket().encode()
            + TSCPacket(self._timestamp).encode()
            + ModePacket().encode()
            + PSBEndPacket().encode()
        )
        self.stats.packets += 4
        self.stats.bytes_emitted += len(group)
        self.stats.psb_groups += 1
        self.aux.write(group)
        self._bytes_since_psb = 0
        # After a PSB the decoder has no IP context, so the next TIP must be
        # sent uncompressed; model that by forgetting the last IP.
        self._last_ip = None

"""Case study 3 (§VIII): NUMA-aware memory placement from the CPG.

The CPG records, per sub-computation and therefore per thread, exactly
which pages were read and written.  Given a NUMA topology (nodes, a
thread-to-node mapping, and per-hop interconnect costs), this module
estimates the remote-access traffic of a page placement and proposes a
better placement (each page on the node that accesses it most), which is
precisely the optimisation opportunity the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.cpg import ConcurrentProvenanceGraph


@dataclass(frozen=True)
class NUMATopology:
    """A NUMA machine model.

    Attributes:
        nodes: Number of NUMA nodes.
        hop_cost: Relative cost of one remote access (local access costs 1).
        interconnect: Optional explicit node-to-node cost matrix; when
            omitted every remote pair costs ``hop_cost``.
    """

    nodes: int
    hop_cost: float = 2.0
    interconnect: Optional[Tuple[Tuple[float, ...], ...]] = None

    def cost(self, from_node: int, to_node: int) -> float:
        """Access cost between two nodes (1.0 locally)."""
        if from_node == to_node:
            return 1.0
        if self.interconnect is not None:
            return self.interconnect[from_node][to_node]
        return self.hop_cost


def round_robin_thread_mapping(threads: Sequence[int], topology: NUMATopology) -> Dict[int, int]:
    """Assign threads to NUMA nodes round robin (the common OS default)."""
    return {tid: index % topology.nodes for index, tid in enumerate(sorted(threads))}


@dataclass
class PlacementReport:
    """Evaluation of one page placement.

    Attributes:
        placement: Page id -> NUMA node.
        total_cost: Modelled access cost of the whole run under the placement.
        remote_accesses: Number of page accesses served from a remote node.
        local_accesses: Number served locally.
    """

    placement: Dict[int, int] = field(default_factory=dict)
    total_cost: float = 0.0
    remote_accesses: int = 0
    local_accesses: int = 0

    @property
    def remote_fraction(self) -> float:
        """Fraction of accesses that were remote."""
        total = self.remote_accesses + self.local_accesses
        return self.remote_accesses / total if total else 0.0


def page_access_matrix(
    cpg: ConcurrentProvenanceGraph, thread_to_node: Mapping[int, int], nodes: int
) -> Dict[int, List[int]]:
    """Count page accesses per NUMA node from the CPG's read/write sets.

    Returns:
        page id -> per-node access counts.
    """
    matrix: Dict[int, List[int]] = {}
    for sub in cpg.subcomputations():
        if sub.tid < 0:
            continue
        node = thread_to_node.get(sub.tid, 0)
        for page in sub.read_set | sub.write_set:
            counts = matrix.setdefault(page, [0] * nodes)
            counts[node] += 1
    return matrix


def evaluate_placement(
    cpg: ConcurrentProvenanceGraph,
    topology: NUMATopology,
    thread_to_node: Mapping[int, int],
    placement: Mapping[int, int],
) -> PlacementReport:
    """Compute the modelled cost of ``placement`` for the recorded run."""
    report = PlacementReport(placement=dict(placement))
    matrix = page_access_matrix(cpg, thread_to_node, topology.nodes)
    for page, counts in matrix.items():
        page_node = placement.get(page, 0)
        for node, count in enumerate(counts):
            if count == 0:
                continue
            cost = topology.cost(node, page_node)
            report.total_cost += cost * count
            if node == page_node:
                report.local_accesses += count
            else:
                report.remote_accesses += count
    return report


def first_touch_placement(
    cpg: ConcurrentProvenanceGraph, thread_to_node: Mapping[int, int]
) -> Dict[int, int]:
    """The kernel's default policy: a page lives where it was first touched."""
    placement: Dict[int, int] = {}
    for node_id in cpg.topological_order():
        sub = cpg.subcomputation(node_id)
        if sub.tid < 0:
            continue
        node = thread_to_node.get(sub.tid, 0)
        for page in sorted(sub.read_set | sub.write_set):
            placement.setdefault(page, node)
    return placement


def optimise_placement(
    cpg: ConcurrentProvenanceGraph,
    topology: NUMATopology,
    thread_to_node: Mapping[int, int],
) -> Dict[int, int]:
    """Place every page on the node that accesses it the most (CPG-guided)."""
    matrix = page_access_matrix(cpg, thread_to_node, topology.nodes)
    return {
        page: max(range(topology.nodes), key=lambda node: counts[node])
        for page, counts in matrix.items()
    }


def placement_improvement(
    cpg: ConcurrentProvenanceGraph,
    topology: NUMATopology,
    thread_to_node: Optional[Mapping[int, int]] = None,
) -> Dict[str, float]:
    """Compare first-touch placement against the CPG-optimised placement.

    Returns a dictionary with both costs and the relative saving, which is
    what the NUMA example prints.
    """
    threads = [tid for tid in cpg.threads() if tid >= 0]
    mapping = (
        dict(thread_to_node)
        if thread_to_node is not None
        else round_robin_thread_mapping(threads, topology)
    )
    baseline = evaluate_placement(cpg, topology, mapping, first_touch_placement(cpg, mapping))
    optimised = evaluate_placement(cpg, topology, mapping, optimise_placement(cpg, topology, mapping))
    saving = 0.0
    if baseline.total_cost > 0:
        saving = 1.0 - optimised.total_cost / baseline.total_cost
    return {
        "first_touch_cost": baseline.total_cost,
        "optimised_cost": optimised.total_cost,
        "first_touch_remote_fraction": baseline.remote_fraction,
        "optimised_remote_fraction": optimised.remote_fraction,
        "relative_saving": saving,
    }

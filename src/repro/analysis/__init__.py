"""The three case studies of §VIII: debugging, DIFT, and NUMA placement.

Where this package sits in the whole reproduction: ``docs/architecture.md``.
"""

from repro.analysis.debugging import (
    MemoryExplanation,
    blame_threads,
    compare_schedules,
    explain_memory_state,
)
from repro.analysis.dift import (
    DIFTReport,
    PolicyAction,
    PolicyChecker,
    SinkReport,
    TaintPolicy,
    make_input_policy,
)
from repro.analysis.numa import (
    NUMATopology,
    PlacementReport,
    evaluate_placement,
    first_touch_placement,
    optimise_placement,
    page_access_matrix,
    placement_improvement,
    round_robin_thread_mapping,
)

__all__ = [
    "MemoryExplanation",
    "blame_threads",
    "compare_schedules",
    "explain_memory_state",
    "DIFTReport",
    "PolicyAction",
    "PolicyChecker",
    "SinkReport",
    "TaintPolicy",
    "make_input_policy",
    "NUMATopology",
    "PlacementReport",
    "evaluate_placement",
    "first_touch_placement",
    "optimise_placement",
    "page_access_matrix",
    "placement_improvement",
    "round_robin_thread_mapping",
]

"""Case study 2 (§VIII): dynamic information-flow tracking (DIFT).

The CPG already records how data flows between sub-computations at page
granularity; DIFT is a policy layer on top: mark some input pages as
sensitive, propagate the taint along the recorded dataflow, and check every
output operation (the glibc output-wrapper shim) against a policy.  As in
the paper, this targets accidental leaks (buggy programs), not a malicious
in-process adversary, because the whole mechanism lives in user space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set

from repro.core.cpg import ConcurrentProvenanceGraph
from repro.core.queries import TaintResult, propagate_taint
from repro.errors import PolicyViolationError
from repro.inspector.interpose import OutputRecord


class PolicyAction(enum.Enum):
    """What the checker should do when tainted data reaches a sink."""

    ALLOW = "allow"
    WARN = "warn"
    DENY = "deny"


@dataclass(frozen=True)
class TaintPolicy:
    """A DIFT policy.

    Attributes:
        name: Policy name for reports.
        sensitive_pages: Pages considered sensitive sources.
        action: What to do when a sink observes tainted data.
    """

    name: str
    sensitive_pages: frozenset
    action: PolicyAction = PolicyAction.DENY


@dataclass
class SinkReport:
    """The verdict for one output operation.

    Attributes:
        record: The output operation being judged.
        tainted: Whether it observed tainted data.
        reason: Which pages caused the verdict.
    """

    record: OutputRecord
    tainted: bool
    reason: Set[int] = field(default_factory=set)


@dataclass
class DIFTReport:
    """The result of checking a whole run against a policy."""

    policy: TaintPolicy
    taint: TaintResult
    sinks: List[SinkReport] = field(default_factory=list)

    @property
    def violations(self) -> List[SinkReport]:
        """Sink operations that observed tainted data."""
        return [sink for sink in self.sinks if sink.tainted]

    @property
    def clean(self) -> bool:
        """Whether no tainted data reached any sink."""
        return not self.violations


class PolicyChecker:
    """Checks the outputs of an INSPECTOR run against a taint policy.

    The checker is the reproduction of the paper's "policy checker embedded
    at the level of glibc wrappers for the output system calls".
    """

    def __init__(self, policy: TaintPolicy) -> None:
        self.policy = policy

    def check(
        self,
        cpg: ConcurrentProvenanceGraph,
        outputs: Sequence[OutputRecord],
        enforce: bool = False,
    ) -> DIFTReport:
        """Propagate taint and judge every output operation.

        Args:
            cpg: The completed CPG of the run.
            outputs: Output records collected by the backend.
            enforce: When true and the policy action is DENY, raise
                :class:`PolicyViolationError` on the first violation.

        Returns:
            The full report (always, unless ``enforce`` raises first).
        """
        taint = propagate_taint(cpg, self.policy.sensitive_pages, through_thread_state=True)
        report = DIFTReport(policy=self.policy, taint=taint)
        for record in outputs:
            source_pages = set(record.source_pages)
            tainted_sources = source_pages & taint.tainted_pages
            # An output is also suspicious if the emitting sub-computation
            # itself observed tainted data, even when no source addresses
            # were declared (conservative page-level policy).
            emitting_node = (record.tid, record.subcomputation)
            node_tainted = (
                cpg.has_node(emitting_node) and taint.is_node_tainted(emitting_node)
            )
            tainted = bool(tainted_sources) or (not source_pages and node_tainted)
            report.sinks.append(
                SinkReport(record=record, tainted=tainted, reason=tainted_sources)
            )
            if tainted and enforce and self.policy.action is PolicyAction.DENY:
                raise PolicyViolationError(
                    f"policy {self.policy.name!r}: thread {record.tid} attempted to output "
                    f"{len(record.data)} bytes derived from sensitive pages "
                    f"{sorted(tainted_sources) or sorted(self.policy.sensitive_pages)}"
                )
        return report


def make_input_policy(
    cpg: ConcurrentProvenanceGraph,
    input_pages: Iterable[int],
    name: str = "no-input-exfiltration",
    action: PolicyAction = PolicyAction.DENY,
) -> TaintPolicy:
    """Build the common "do not leak raw input" policy from a run's input pages."""
    return TaintPolicy(name=name, sensitive_pages=frozenset(input_pages), action=action)

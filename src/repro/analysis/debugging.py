"""Case study 1 (§VIII): debugging multithreaded programs with provenance.

Conventional debugging shows *what* the memory state is; the CPG explains
*why*.  Given a run and the addresses of a suspicious value, this module
answers: which sub-computations (in which threads, started and ended by
which synchronization calls) wrote those addresses, what did they read,
and which schedule of sub-computations led to the final value.  It also
surfaces conflicting concurrent accesses -- the tell-tale of a missing
lock -- by checking for write conflicts between sub-computations that are
unordered by happens-before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.dependencies import writers_of_pages
from repro.core.queries import backward_slice, find_racy_pairs, schedule_of
from repro.core.thunk import NodeId
from repro.memory.layout import DEFAULT_PAGE_SIZE, page_id


@dataclass
class MemoryExplanation:
    """Why a set of memory locations holds the values it does.

    Attributes:
        pages: The pages the questioned addresses live on.
        direct_writers: Sub-computations whose write set intersects the pages.
        explanation: Every sub-computation in the transitive dataflow
            explanation (the backward slice of the direct writers).
        schedule: The recorded global schedule restricted to the explanation,
            in causal order.
        racy_pairs: Conflicting concurrent accesses touching the pages.
    """

    pages: Set[int] = field(default_factory=set)
    direct_writers: Set[NodeId] = field(default_factory=set)
    explanation: Set[NodeId] = field(default_factory=set)
    schedule: List[NodeId] = field(default_factory=list)
    racy_pairs: List[Tuple[NodeId, NodeId, frozenset]] = field(default_factory=list)

    @property
    def threads_involved(self) -> Set[int]:
        """Thread ids that contributed to the questioned memory state."""
        return {tid for tid, _ in self.explanation if tid >= 0}

    def summary_lines(self, cpg: ConcurrentProvenanceGraph) -> List[str]:
        """Human-readable rendering used by the example script."""
        lines = [
            f"pages under question      : {sorted(self.pages)}",
            f"direct writers            : {sorted(self.direct_writers)}",
            f"threads involved          : {sorted(self.threads_involved)}",
            f"sub-computations in slice : {len(self.explanation)}",
            f"suspicious concurrent accesses : {len(self.racy_pairs)}",
        ]
        for node_id in self.schedule:
            node = cpg.subcomputation(node_id)
            lines.append(
                f"  {node_id} started_by={node.started_by!r} ended_by={node.ended_by!r} "
                f"reads={len(node.read_set)} writes={len(node.write_set)}"
            )
        return lines


def explain_memory_state(
    cpg: ConcurrentProvenanceGraph,
    addresses: Iterable[int],
    page_size: int = DEFAULT_PAGE_SIZE,
) -> MemoryExplanation:
    """Explain the final contents of ``addresses`` using the CPG.

    Args:
        cpg: A completed CPG with data edges derived.
        addresses: Byte addresses the user is asking about.
        page_size: Page size the run used (provenance is page granular).
    """
    pages = {page_id(address, page_size) for address in addresses}
    writers = writers_of_pages(cpg, pages)
    explanation: Set[NodeId] = set()
    for writer in writers:
        explanation |= backward_slice(cpg, writer, kinds=(EdgeKind.DATA,))
    order = [node for node in schedule_of(cpg) if node in explanation]
    racy = [
        (a, b, conflict)
        for a, b, conflict in find_racy_pairs(cpg)
        if conflict & pages
    ]
    return MemoryExplanation(
        pages=pages,
        direct_writers=writers,
        explanation=explanation,
        schedule=order,
        racy_pairs=racy,
    )


def compare_schedules(
    first: ConcurrentProvenanceGraph, second: ConcurrentProvenanceGraph
) -> Dict[str, object]:
    """Compare the recorded schedules of two runs of the same program.

    Useful when a bug reproduces only under some interleavings: the
    comparison reports sub-computations whose happens-before neighbourhood
    differs between the two runs.
    """
    first_edges = {(s, t) for s, t, _ in first.edges(EdgeKind.SYNC)}
    second_edges = {(s, t) for s, t, _ in second.edges(EdgeKind.SYNC)}
    return {
        "only_in_first": sorted(first_edges - second_edges),
        "only_in_second": sorted(second_edges - first_edges),
        "common": len(first_edges & second_edges),
        "identical": first_edges == second_edges,
    }


def blame_threads(cpg: ConcurrentProvenanceGraph, pages: Sequence[int]) -> Dict[int, int]:
    """Count, per thread, how many sub-computations wrote the given pages."""
    wanted = set(pages)
    blame: Dict[int, int] = {}
    for node in cpg.subcomputations():
        if node.tid >= 0 and node.write_set & wanted:
            blame[node.tid] = blame.get(node.tid, 0) + 1
    return blame

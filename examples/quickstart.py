#!/usr/bin/env python3
"""Quickstart: run one workload under INSPECTOR and look at its provenance.

This is the 60-second tour of the library:

1. run the Phoenix ``histogram`` benchmark natively (plain pthreads model);
2. run the same, unmodified workload under the INSPECTOR library;
3. compare the modelled runtimes (the provenance overhead);
4. inspect the Concurrent Provenance Graph: sub-computations, control /
   synchronization / data edges, and a backward slice explaining one of
   the output pages.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.cpg import EdgeKind
from repro.core.queries import backward_slice, graph_statistics
from repro.inspector.api import run_native, run_with_provenance
from repro.workloads.registry import get_workload


def main() -> None:
    workload = get_workload("histogram")
    dataset = workload.generate_dataset("small")
    threads = 4

    print(f"== running {workload.name} ({workload.suite}) with {threads} threads ==")
    native = run_native(workload, num_threads=threads, dataset=dataset)
    traced = run_with_provenance(workload, num_threads=threads, dataset=dataset)

    # The library is transparent: both modes compute the same result.
    workload.verify(native.result, dataset)
    workload.verify(traced.result, dataset)
    print("results identical in both modes :", native.result == traced.result)

    stats = traced.stats
    print("\n== modelled cost ==")
    print(f"native time                     : {native.stats.total_seconds * 1e3:8.3f} ms")
    print(f"inspector time                  : {stats.total_seconds * 1e3:8.3f} ms")
    print(f"provenance overhead             : {stats.overhead_against(native.stats):8.2f} x")
    print(f"  threading library component   : {stats.threading_seconds * 1e3:8.3f} ms")
    print(f"  Intel PT component            : {stats.pt_seconds * 1e3:8.3f} ms")
    print(f"page faults taken               : {stats.page_faults}")
    print(f"PT trace bytes                  : {stats.pt_bytes}")

    cpg = traced.cpg
    print("\n== the Concurrent Provenance Graph ==")
    for key, value in graph_statistics(cpg).items():
        print(f"{key:20s}: {value:.1f}")

    print("\nsample of data-dependence edges (writer -> reader, shared pages):")
    for source, target, attrs in cpg.edges(EdgeKind.DATA)[:8]:
        print(f"  {source} -> {target}  pages={sorted(attrs['pages'])[:4]}")

    # Explain one output page: which sub-computations does it depend on?
    output_page = traced.outputs[0].source_pages[0]
    writers = [
        node.node_id for node in cpg.subcomputations() if output_page in node.write_set
    ]
    if writers:
        slice_nodes = backward_slice(cpg, writers[0], kinds=(EdgeKind.DATA,))
        print(
            f"\nbackward slice of output page {output_page}: "
            f"{len(slice_nodes)} sub-computations across threads "
            f"{sorted({tid for tid, _ in slice_nodes if tid >= 0})}"
        )


if __name__ == "__main__":
    main()

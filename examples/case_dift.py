#!/usr/bin/env python3
"""Case study 2 (§VIII): dynamic information-flow tracking (DIFT).

Scenario: the input file contains sensitive records, and the operator wants
to be told (or to prevent it outright) if any output of the program was
derived from them.  INSPECTOR already records how data flows between
sub-computations; the policy checker marks the input pages as tainted,
propagates the taint along the recorded dataflow, and judges every write
that went through the output shim (the stand-in for the glibc output
wrappers the paper instruments).

Run with::

    python examples/case_dift.py
"""

from __future__ import annotations

from repro.analysis.dift import PolicyAction, PolicyChecker, make_input_policy
from repro.errors import PolicyViolationError
from repro.inspector.api import run_with_provenance
from repro.workloads.registry import get_workload


def main() -> None:
    workload = get_workload("word_count")
    result = run_with_provenance(workload, num_threads=4, size="small")

    input_pages = result.backend.tracker.input_pages
    print(f"sensitive input pages : {len(input_pages)}")
    print(f"output operations     : {len(result.outputs)}")

    # Audit mode: report which outputs observed tainted data.
    audit_policy = make_input_policy(result.cpg, input_pages, action=PolicyAction.WARN)
    report = PolicyChecker(audit_policy).check(result.cpg, result.outputs)
    print("\n== audit report ==")
    print(f"tainted sub-computations : {len(report.taint.tainted_nodes)}")
    print(f"tainted pages            : {len(report.taint.tainted_pages)}")
    for sink in report.sinks:
        verdict = "TAINTED" if sink.tainted else "clean"
        print(
            f"  output by thread {sink.record.tid:3d} "
            f"({len(sink.record.data)} bytes) -> {verdict}"
        )

    # Enforcement mode: the same policy with DENY raises at the first leak,
    # which is how a policy checker embedded in the output wrappers would
    # stop the write before it happens.
    deny_policy = make_input_policy(result.cpg, input_pages, action=PolicyAction.DENY)
    print("\n== enforcement mode ==")
    try:
        PolicyChecker(deny_policy).check(result.cpg, result.outputs, enforce=True)
        print("no sensitive data reached an output sink")
    except PolicyViolationError as violation:
        print(f"blocked: {violation}")

    # A policy over pages the program never touches stays clean.
    unrelated = make_input_policy(result.cpg, [10**9], name="unrelated-secret")
    clean = PolicyChecker(unrelated).check(result.cpg, result.outputs)
    print(f"\nunrelated-secret policy clean : {clean.clean}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Case study 3 (§VIII): NUMA-aware memory placement from the CPG.

Scenario: the same multithreaded program will run on a NUMA machine, and
the operator wants to know whether the default first-touch page placement
leaves cores chewing on remote memory -- and what a better placement would
look like.  The CPG records exactly which pages each thread's
sub-computations touched, which is the access matrix a placement optimiser
needs.

The script evaluates the recorded ``kmeans`` run on three interconnect
configurations (symmetric 2-node, symmetric 4-node, and an asymmetric
4-node topology) and compares first-touch placement against the
CPG-optimised placement for each.

Run with::

    python examples/case_numa.py
"""

from __future__ import annotations

from repro.analysis.numa import NUMATopology, placement_improvement
from repro.inspector.api import run_with_provenance
from repro.workloads.registry import get_workload


def main() -> None:
    workload = get_workload("kmeans")
    result = run_with_provenance(workload, num_threads=8, size="small")
    print(f"recorded run: {workload.name}, {len(result.cpg)} sub-computations")

    asymmetric = (
        (1.0, 2.0, 3.0, 3.0),
        (2.0, 1.0, 3.0, 3.0),
        (3.0, 3.0, 1.0, 2.0),
        (3.0, 3.0, 2.0, 1.0),
    )
    topologies = {
        "2 nodes, 2.0x remote": NUMATopology(nodes=2, hop_cost=2.0),
        "4 nodes, 2.5x remote": NUMATopology(nodes=4, hop_cost=2.5),
        "4 nodes, asymmetric interconnect": NUMATopology(nodes=4, interconnect=asymmetric),
    }

    for label, topology in topologies.items():
        report = placement_improvement(result.cpg, topology)
        print(f"\n== {label} ==")
        print(f"  first-touch cost      : {report['first_touch_cost']:12.0f}")
        print(f"  CPG-optimised cost    : {report['optimised_cost']:12.0f}")
        print(f"  remote accesses       : "
              f"{report['first_touch_remote_fraction']:.1%} -> "
              f"{report['optimised_remote_fraction']:.1%}")
        print(f"  modelled saving       : {report['relative_saving']:.1%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Case study 1 (§VIII): explaining a bad memory state after a run.

Scenario: the final value of a shared accumulator looks wrong and the
developer wants to know *why* the memory is in that state -- which threads
wrote it, in which order, derived from what -- rather than just *what* the
state is (which is all a debugger or core dump shows).

The script runs the ``reverse_index`` workload (many threads inserting into
a shared index under a lock), then uses the CPG to answer:

* which sub-computations wrote the index counters,
* the causal schedule that produced the final value,
* whether any unsynchronized conflicting accesses exist (a data race would
  show up here as a pair of concurrent sub-computations touching the page).

The run also streams its CPG into a persistent provenance store, and the
final sections answer the same "why is this page in that state" question
again -- this time *from disk*, through the ``python -m repro.store`` CLI,
the way a developer would after the traced process is long gone.  The
store holds many runs, so the example then traces the workload a *second*
time into the same store and diffs the page's lineage between the two runs
with ``compare_lineage`` -- the "did yesterday's run produce this memory
the same way as today's" question a single-run record cannot answer.

Run with::

    python examples/case_debugging.py
"""

from __future__ import annotations

import tempfile

from repro.analysis.debugging import blame_threads, explain_memory_state
from repro.core.serialization import node_key
from repro.inspector.api import run_with_provenance
from repro.inspector.config import InspectorConfig
from repro.store import ProvenanceStore, StoreQueryEngine
from repro.store.__main__ import main as store_cli
from repro.workloads.registry import get_workload


def main() -> None:
    config = InspectorConfig()
    workload = get_workload("reverse_index")
    store_dir = tempfile.mkdtemp(prefix="inspector-debugging-store-")
    result = run_with_provenance(
        workload, num_threads=4, size="small", config=config, store_path=store_dir
    )

    # The "suspicious" memory: the shared per-target counters the workload
    # reported through its output shim.
    suspicious_pages = list(result.outputs[0].source_pages)
    suspicious_addresses = [page * config.page_size for page in suspicious_pages]

    print(f"== explaining {len(suspicious_addresses)} address(es) of the shared index ==")
    explanation = explain_memory_state(
        result.cpg, suspicious_addresses, page_size=config.page_size
    )
    for line in explanation.summary_lines(result.cpg)[:20]:
        print(line)

    print("\n== which thread wrote the index how often? ==")
    for tid, count in sorted(blame_threads(result.cpg, suspicious_pages).items()):
        print(f"  thread {tid:3d}: {count:4d} sub-computations wrote the index")

    if explanation.racy_pairs:
        print("\n!! unsynchronized conflicting accesses found (missing lock?):")
        for first, second, pages in explanation.racy_pairs[:5]:
            print(f"  {first} || {second} conflict on pages {sorted(pages)}")
    else:
        print("\nno unsynchronized conflicting accesses: every write was lock-protected")

    # The same question, answered after the fact from the persistent store:
    # the run above streamed its CPG into `store_dir` segment by segment,
    # so the lineage query below touches the disk, not `result.cpg`.
    print(f"\n== the same query, from the store at {store_dir} ==")
    store_cli(["info", store_dir])
    page_list = ",".join(str(page) for page in suspicious_pages[:2])
    run_id = result.store_run_id
    print(f"\n$ python -m repro.store slice {store_dir} --pages {page_list} --run {run_id}")
    store_cli(["slice", store_dir, "--pages", page_list, "--run", str(run_id)])

    # A store holds many runs.  Trace the workload again into the *same*
    # store -- same program, its own run namespace -- and diff how the two
    # executions produced the suspicious page.
    print("\n== second run, same store: diffing the two executions ==")
    rerun = run_with_provenance(
        workload, num_threads=4, size="small", config=config, store_path=store_dir
    )
    print(f"$ python -m repro.store runs {store_dir}")
    store_cli(["runs", store_dir])
    engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
    page = suspicious_pages[0]
    diff = engine.compare_lineage(result.store_run_id, rerun.store_run_id, page)
    print(
        f"\ncompare_lineage(run {diff.run_a}, run {diff.run_b}, page {page}): "
        f"{len(diff.common)} common, {len(diff.only_a)} only in run {diff.run_a}, "
        f"{len(diff.only_b)} only in run {diff.run_b}"
    )
    if diff.identical:
        print("both runs produced the page through the same history -- the bug reproduces")
    else:
        # Histories diverged: a schedule-dependent write path. The
        # exclusive nodes are exactly where to start looking.
        for node in sorted(diff.only_a | diff.only_b)[:5]:
            owner = diff.run_a if node in diff.only_a else diff.run_b
            print(f"  {node_key(node)} appears only in run {owner}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Case study 1 (§VIII): explaining a bad memory state after a run.

Scenario: the final value of a shared accumulator looks wrong and the
developer wants to know *why* the memory is in that state -- which threads
wrote it, in which order, derived from what -- rather than just *what* the
state is (which is all a debugger or core dump shows).

The script runs the ``reverse_index`` workload (many threads inserting into
a shared index under a lock), then uses the CPG to answer:

* which sub-computations wrote the index counters,
* the causal schedule that produced the final value,
* whether any unsynchronized conflicting accesses exist (a data race would
  show up here as a pair of concurrent sub-computations touching the page).

The run also streams its CPG into a persistent provenance store, and the
final section answers the same "why is this page in that state" question
again -- this time *from disk*, through the ``python -m repro.store`` CLI,
the way a developer would after the traced process is long gone.

Run with::

    python examples/case_debugging.py
"""

from __future__ import annotations

import tempfile

from repro.analysis.debugging import blame_threads, explain_memory_state
from repro.inspector.api import run_with_provenance
from repro.inspector.config import InspectorConfig
from repro.store.__main__ import main as store_cli
from repro.workloads.registry import get_workload


def main() -> None:
    config = InspectorConfig()
    workload = get_workload("reverse_index")
    store_dir = tempfile.mkdtemp(prefix="inspector-debugging-store-")
    result = run_with_provenance(
        workload, num_threads=4, size="small", config=config, store_path=store_dir
    )

    # The "suspicious" memory: the shared per-target counters the workload
    # reported through its output shim.
    suspicious_pages = list(result.outputs[0].source_pages)
    suspicious_addresses = [page * config.page_size for page in suspicious_pages]

    print(f"== explaining {len(suspicious_addresses)} address(es) of the shared index ==")
    explanation = explain_memory_state(
        result.cpg, suspicious_addresses, page_size=config.page_size
    )
    for line in explanation.summary_lines(result.cpg)[:20]:
        print(line)

    print("\n== which thread wrote the index how often? ==")
    for tid, count in sorted(blame_threads(result.cpg, suspicious_pages).items()):
        print(f"  thread {tid:3d}: {count:4d} sub-computations wrote the index")

    if explanation.racy_pairs:
        print("\n!! unsynchronized conflicting accesses found (missing lock?):")
        for first, second, pages in explanation.racy_pairs[:5]:
            print(f"  {first} || {second} conflict on pages {sorted(pages)}")
    else:
        print("\nno unsynchronized conflicting accesses: every write was lock-protected")

    # The same question, answered after the fact from the persistent store:
    # the run above streamed its CPG into `store_dir` segment by segment,
    # so the lineage query below touches the disk, not `result.cpg`.
    print(f"\n== the same query, from the store at {store_dir} ==")
    store_cli(["info", store_dir])
    page_list = ",".join(str(page) for page in suspicious_pages[:2])
    print(f"\n$ python -m repro.store slice {store_dir} --pages {page_list}")
    store_cli(["slice", store_dir, "--pages", page_list])


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Case study 1 (§VIII): explaining a bad memory state after a run.

Scenario: the final value of a shared accumulator looks wrong and the
developer wants to know *why* the memory is in that state -- which threads
wrote it, in which order, derived from what -- rather than just *what* the
state is (which is all a debugger or core dump shows).

The script runs the ``reverse_index`` workload (many threads inserting into
a shared index under a lock), then uses the CPG to answer:

* which sub-computations wrote the index counters,
* the causal schedule that produced the final value,
* whether any unsynchronized conflicting accesses exist (a data race would
  show up here as a pair of concurrent sub-computations touching the page).

Run with::

    python examples/case_debugging.py
"""

from __future__ import annotations

from repro.analysis.debugging import blame_threads, explain_memory_state
from repro.inspector.api import run_with_provenance
from repro.inspector.config import InspectorConfig
from repro.workloads.registry import get_workload


def main() -> None:
    config = InspectorConfig()
    workload = get_workload("reverse_index")
    result = run_with_provenance(workload, num_threads=4, size="small", config=config)

    # The "suspicious" memory: the shared per-target counters the workload
    # reported through its output shim.
    suspicious_pages = list(result.outputs[0].source_pages)
    suspicious_addresses = [page * config.page_size for page in suspicious_pages]

    print(f"== explaining {len(suspicious_addresses)} address(es) of the shared index ==")
    explanation = explain_memory_state(
        result.cpg, suspicious_addresses, page_size=config.page_size
    )
    for line in explanation.summary_lines(result.cpg)[:20]:
        print(line)

    print("\n== which thread wrote the index how often? ==")
    for tid, count in sorted(blame_threads(result.cpg, suspicious_pages).items()):
        print(f"  thread {tid:3d}: {count:4d} sub-computations wrote the index")

    if explanation.racy_pairs:
        print("\n!! unsynchronized conflicting accesses found (missing lock?):")
        for first, second, pages in explanation.racy_pairs[:5]:
            print(f"  {first} || {second} conflict on pages {sorted(pages)}")
    else:
        print("\nno unsynchronized conflicting accesses: every write was lock-protected")


if __name__ == "__main__":
    main()

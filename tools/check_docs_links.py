#!/usr/bin/env python3
"""Fail on broken relative links in README.md and docs/*.md.

Checks every markdown link ``[text](target)`` whose target is relative:

* the target file must exist (relative to the file containing the link);
* a ``#fragment`` pointing into a markdown file must match one of that
  file's headings (GitHub-style slugs).

External links (``http(s)://``, ``mailto:``) are ignored -- CI must not
depend on the network.  Stdlib only; exits non-zero listing every broken
link.  Run from anywhere::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` -- good enough for our docs; images share the syntax.
_LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def docs_files(root: Path = REPO_ROOT) -> List[Path]:
    """The files the checker covers: README.md plus everything in docs/."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close enough for our docs)."""
    # Strip inline code/emphasis markers and links, keep the visible text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ").strip().lower()
    text = "".join(ch for ch in text if ch.isalnum() or ch in " -")
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> Iterable[str]:
    in_fence = False
    seen: dict = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match is None:
            continue
        slug = github_slug(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        yield slug if count == 0 else f"{slug}-{count}"


def extract_links(path: Path) -> Iterable[Tuple[int, str]]:
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield number, match.group(1)


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check_file(path: Path) -> List[str]:
    """Return one error string per broken link in ``path``."""
    errors = []
    for line, target in extract_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        resolved = path if not base else (path.parent / base)
        where = f"{_display(path)}:{line}"
        if base and not resolved.exists():
            errors.append(f"{where}: broken link target {target!r} ({base} does not exist)")
            continue
        if fragment and resolved.suffix == ".md" and resolved.is_file():
            if fragment not in set(heading_slugs(resolved)):
                errors.append(
                    f"{where}: link {target!r} points at missing heading "
                    f"#{fragment} in {_display(resolved)}"
                )
    return errors


def main() -> int:
    files = docs_files()
    errors: List[str] = []
    for path in files:
        errors.extend(check_file(path))
    checked = ", ".join(str(path.relative_to(REPO_ROOT)) for path in files)
    if errors:
        print(f"checked {checked}", file=sys.stderr)
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    print(f"docs links ok ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Property tests for the persistent provenance store.

Random lock-schedule executions (with occasional unsynchronized accesses,
so sync, control, *and* data edges plus racy structure all appear) are
recorded through the tracker, ingested into a store, and read back: the
round trip must preserve every vertex and every edge with its attributes,
and the out-of-core query engine must return exactly what the in-memory
query functions return on the same graph.
"""

import os
import random
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.algorithm import ProvenanceTracker
from repro.core.cpg import EdgeKind
from repro.core.dependencies import derive_data_edges
from repro.core.queries import (
    DEFAULT_SLICE_KINDS,
    backward_slice,
    forward_slice,
    lineage_of_pages,
    propagate_taint,
)
from repro.store import ProvenanceStore, StoreQueryEngine


def random_cpg(seed: int):
    """Record a random 3-thread mostly-lock-ordered execution."""
    rng = random.Random(seed)
    tracker = ProvenanceTracker()
    tracker.register_input_pages({0, 1})
    threads = [1, 2, 3]
    lock = 99
    holder = None
    for tid in threads:
        tracker.on_thread_start(tid)
    for _ in range(rng.randint(5, 40)):
        tid = rng.choice(threads)
        if rng.random() < 0.2:
            # Unsynchronized access: may race, exercises concurrency paths.
            tracker.on_memory_access(tid, rng.randint(0, 7), is_write=bool(rng.getrandbits(1)))
            continue
        if holder is None:
            tracker.on_sync_boundary(tid, "mutex_lock")
            tracker.on_acquire(tid, lock)
            tracker.begin_next(tid)
            tracker.on_memory_access(tid, rng.randint(0, 7), is_write=bool(rng.getrandbits(1)))
            holder = tid
        elif holder == tid:
            tracker.on_sync_boundary(tid, "mutex_unlock")
            tracker.on_release(tid, lock)
            tracker.begin_next(tid)
            holder = None
    for tid in threads:
        tracker.on_thread_end(tid)
    cpg = tracker.finalize()
    derive_data_edges(cpg)
    return cpg


def canonical_edges(cpg):
    entries = []
    for source, target, attrs in cpg.edges():
        kind = attrs["kind"]
        if kind is EdgeKind.SYNC:
            extra = (attrs.get("object_id"), attrs.get("operation", ""))
        elif kind is EdgeKind.DATA:
            extra = (tuple(sorted(attrs.get("pages", ()))),)
        else:
            extra = ()
        entries.append((source, target, kind.value, extra))
    return sorted(entries)


def ingested_copy(cpg, segment_nodes: int):
    """Ingest ``cpg`` into a throwaway store and reopen it cold."""
    tmp = tempfile.mkdtemp(prefix="inspector-store-")
    path = os.path.join(tmp, "store")
    ProvenanceStore.create(path).ingest(cpg, segment_nodes=segment_nodes)
    return ProvenanceStore.open(path)


class TestStoreRoundTripProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=15)
    @given(st.integers(0, 10_000), st.integers(2, 9))
    def test_round_trip_preserves_nodes_and_all_edge_kinds(self, seed, segment_nodes):
        cpg = random_cpg(seed)
        store = ingested_copy(cpg, segment_nodes)
        clone = store.load_cpg()
        assert clone.nodes() == cpg.nodes()
        assert canonical_edges(clone) == canonical_edges(cpg)
        for node_id in cpg.nodes():
            original = cpg.subcomputation(node_id)
            copy = clone.subcomputation(node_id)
            assert copy.read_set == original.read_set
            assert copy.write_set == original.write_set
            assert copy.clock == original.clock
            assert copy.started_by == original.started_by
            assert copy.ended_by == original.ended_by
            assert copy.faults == original.faults

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=15)
    @given(st.integers(0, 10_000), st.integers(2, 9))
    def test_indexed_slices_equal_in_memory_queries(self, seed, segment_nodes):
        cpg = random_cpg(seed)
        engine = StoreQueryEngine(ingested_copy(cpg, segment_nodes))
        for node_id in cpg.nodes()[::3]:
            assert engine.backward_slice(node_id) == backward_slice(cpg, node_id)
            assert engine.forward_slice(node_id) == forward_slice(cpg, node_id)
            assert engine.backward_slice(node_id, kinds=DEFAULT_SLICE_KINDS) == backward_slice(
                cpg, node_id, kinds=DEFAULT_SLICE_KINDS
            )

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=15)
    @given(
        st.integers(0, 10_000),
        st.integers(2, 9),
        st.sets(st.integers(0, 7), min_size=1, max_size=3),
        st.booleans(),
    )
    def test_indexed_taint_and_lineage_equal_in_memory_queries(
        self, seed, segment_nodes, pages, through_thread_state
    ):
        cpg = random_cpg(seed)
        engine = StoreQueryEngine(ingested_copy(cpg, segment_nodes))
        assert engine.lineage_of_pages(pages) == lineage_of_pages(cpg, pages)
        mine = engine.propagate_taint(pages, through_thread_state=through_thread_state)
        reference = propagate_taint(cpg, pages, through_thread_state=through_thread_state)
        assert mine.tainted_nodes == reference.tainted_nodes
        assert mine.tainted_pages == reference.tainted_pages
        assert mine.source_pages == reference.source_pages

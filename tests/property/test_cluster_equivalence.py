"""Property: any sharding of any store answers exactly like no sharding.

For random CPGs ingested as runs of one store and a *random* run-to-shard
assignment, every query through the :class:`~repro.store.cluster.
StoreCluster` router must equal the single-store
:class:`~repro.store.query.StoreQueryEngine` answer -- the sets, the
``*_across_runs`` dict *enumeration order* (mint order is part of the
result shape), and the ``compare_lineage`` diff, including its
single-page ``pages=int`` spelling.  Shards are in-process servers
(:class:`~repro.store.cluster.InProcessShardClient`), so every example
exercises the full wire dispatch without socket overhead.
"""

import os
import shutil
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers.clusters import InProcessCluster, build_multirun_store, hash_partition

from repro.store import StoreQueryEngine


def sharded_example(draw_runs, shard_of):
    """(seeds, owned_runs) for len(shard_of) runs over max(shard_of)+1 shards."""
    n_shards = max(shard_of) + 1
    owned = [[] for _ in range(n_shards)]
    for run_index, shard_index in enumerate(shard_of):
        owned[shard_index].append(run_index + 1)  # run ids mint 1..N
    return owned


class TestClusterEquivalenceProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=10)
    @given(
        seeds=st.lists(st.integers(0, 10_000), min_size=2, max_size=4),
        assignment=st.data(),
        pages=st.sets(st.integers(0, 7), min_size=1, max_size=3),
    )
    def test_manual_sharding_matches_single_store(self, seeds, assignment, pages):
        shard_of = assignment.draw(
            st.lists(
                st.integers(0, 2), min_size=len(seeds), max_size=len(seeds)
            ).filter(lambda shards: 0 in shards),
            label="run->shard",
        )
        base = tempfile.mkdtemp(prefix="inspector-cluster-")
        try:
            whole = os.path.join(base, "whole")
            store, runs = build_multirun_store(whole, seeds)
            engine = StoreQueryEngine(store)
            owned = sharded_example(seeds, shard_of)
            # Drop empty shards: a manifest shard with no runs is legal
            # but uninteresting; keeping some empty sometimes is covered
            # by assignments that skip an index.
            owned = [runs_of for runs_of in owned if runs_of] or [runs]
            with InProcessCluster(whole, os.path.join(base, "shards"), owned) as built:
                cluster = built.cluster
                assert cluster.run_ids() == runs

                wanted = sorted(pages)
                lineage_c = cluster.lineage_across_runs(wanted)
                lineage_e = engine.lineage_across_runs(wanted)
                assert lineage_c == lineage_e
                assert list(lineage_c) == list(lineage_e)

                taint_c = cluster.taint_across_runs(wanted)
                taint_e = engine.taint_across_runs(wanted)
                assert list(taint_c) == list(taint_e)
                for run in runs:
                    assert taint_c[run].tainted_nodes == taint_e[run].tainted_nodes
                    assert taint_c[run].tainted_pages == taint_e[run].tainted_pages
                    assert taint_c[run].source_pages == taint_e[run].source_pages

                for run in runs:
                    assert cluster.lineage(wanted, run=run) == engine.lineage_of_pages(
                        wanted, run=run
                    )

                run_a, run_b = runs[0], runs[-1]
                diff_c = cluster.compare_lineage(run_a, run_b, wanted)
                diff_e = engine.compare_lineage(run_a, run_b, wanted)
                assert diff_c.pages == diff_e.pages
                assert diff_c.only_a == diff_e.only_a
                assert diff_c.only_b == diff_e.only_b
                assert diff_c.common == diff_e.common
                assert diff_c.identical == diff_e.identical

                single = wanted[0]  # the pages=int spelling
                diff_c1 = cluster.compare_lineage(run_a, run_b, single)
                diff_e1 = engine.compare_lineage(run_a, run_b, single)
                assert diff_c1.pages == diff_e1.pages == (single,)
                assert diff_c1.only_a == diff_e1.only_a
                assert diff_c1.only_b == diff_e1.only_b
                assert diff_c1.common == diff_e1.common
        finally:
            shutil.rmtree(base, ignore_errors=True)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=6)
    @given(
        seeds=st.lists(st.integers(0, 10_000), min_size=2, max_size=4),
        n_shards=st.integers(1, 3),
        pages=st.sets(st.integers(0, 7), min_size=1, max_size=3),
    )
    def test_run_hash_sharding_matches_single_store(self, seeds, n_shards, pages):
        base = tempfile.mkdtemp(prefix="inspector-cluster-")
        try:
            whole = os.path.join(base, "whole")
            store, runs = build_multirun_store(whole, seeds)
            engine = StoreQueryEngine(store)
            owned = hash_partition(runs, n_shards)
            with InProcessCluster(
                whole, os.path.join(base, "shards"), owned, policy="run-hash"
            ) as built:
                cluster = built.cluster
                assert cluster.run_ids() == runs
                wanted = sorted(pages)
                lineage_c = cluster.lineage_across_runs(wanted)
                lineage_e = engine.lineage_across_runs(wanted)
                assert lineage_c == lineage_e
                assert list(lineage_c) == list(lineage_e)
                for run in runs:
                    assert cluster.lineage(wanted, run=run) == engine.lineage_of_pages(
                        wanted, run=run
                    )
        finally:
            shutil.rmtree(base, ignore_errors=True)

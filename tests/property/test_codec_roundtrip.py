"""Property tests: the segment codecs are interchangeable.

Random segments -- arbitrary sub-computations (clocks, page sets, thunks,
branch records, sync metadata) plus arbitrary edges of every kind -- must
survive a round trip through **every** registered codec with identical
content: a codec is only allowed to change the bytes, never the graph.
The compressed columnar codec (``binary-z``) additionally round-trips at
every zlib level and rejects corrupt frame bodies.  A final property
checks the equivalence end to end through a store: the same CPG ingested
once per codec answers every query identically.
"""

import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cpg import EdgeKind
from repro.core.thunk import BranchRecord, SubComputation, Thunk
from repro.core.vector_clock import VectorClock
from repro.store import ProvenanceStore, StoreQueryEngine
from repro.store.codecs import CODECS
from repro.store.segment import decode_segment, encode_segment

_pages = st.integers(min_value=0, max_value=2**40)
_small = st.integers(min_value=0, max_value=12)
_names = st.one_of(
    st.none(), st.sampled_from(["mutex_lock", "mutex_unlock", "barrier_wait", "thread_exit", ""])
)


@st.composite
def subcomputations(draw):
    """A batch of distinct sub-computations with rich payloads."""
    count = draw(st.integers(min_value=1, max_value=8))
    nodes = []
    identities = draw(
        st.lists(
            st.tuples(st.integers(min_value=-1, max_value=5), _small),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    for tid, index in identities:
        node = SubComputation(
            tid=tid,
            index=index,
            clock=VectorClock(
                draw(
                    st.dictionaries(
                        st.integers(min_value=-1, max_value=5),
                        st.integers(min_value=0, max_value=2**33),
                        max_size=4,
                    )
                )
            ),
            started_by=draw(_names),
            ended_by=draw(_names),
            faults=draw(_small),
        )
        node.read_set.update(draw(st.sets(_pages, max_size=5)))
        node.write_set.update(draw(st.sets(_pages, max_size=5)))
        for position in range(draw(st.integers(min_value=0, max_value=3))):
            branch = None
            if draw(st.booleans()):
                branch = BranchRecord(
                    site=draw(st.integers(min_value=0, max_value=2**45)),
                    taken=draw(st.booleans()),
                    is_indirect=draw(st.booleans()),
                )
            node.thunks.append(
                Thunk(
                    index=position,
                    start_branch=branch,
                    instructions=draw(st.integers(min_value=0, max_value=10**6)),
                )
            )
        nodes.append(node)
    return nodes


@st.composite
def edges_over(draw, nodes):
    """Edges whose endpoints mix in-segment and out-of-segment node ids."""
    ids = [node.node_id for node in nodes] + [(9, 999)]
    count = draw(st.integers(min_value=0, max_value=10))
    edges = []
    for _ in range(count):
        source = draw(st.sampled_from(ids))
        target = draw(st.sampled_from(ids))
        kind = draw(st.sampled_from([EdgeKind.CONTROL, EdgeKind.SYNC, EdgeKind.DATA]))
        if kind is EdgeKind.SYNC:
            attrs = {
                "object_id": draw(
                    st.one_of(st.none(), st.integers(min_value=-8, max_value=2**34))
                ),
                "operation": draw(_names) or "",
            }
        elif kind is EdgeKind.DATA:
            attrs = {"pages": frozenset(draw(st.sets(_pages, max_size=5)))}
        else:
            attrs = {}
        edges.append((source, target, kind, attrs))
    return edges


def canonical_nodes(payload):
    out = {}
    for node_id, node in payload.nodes.items():
        out[node_id] = (
            node.tid,
            node.index,
            tuple(sorted(node.clock.as_dict().items())),
            tuple(sorted(node.read_set)),
            tuple(sorted(node.write_set)),
            node.started_by,
            node.ended_by,
            node.faults,
            tuple(
                (
                    thunk.index,
                    thunk.instructions,
                    (
                        (thunk.start_branch.site, thunk.start_branch.taken, thunk.start_branch.is_indirect)
                        if thunk.start_branch is not None
                        else None
                    ),
                )
                for thunk in node.thunks
            ),
        )
    return out


def canonical_edges(payload):
    entries = []
    for source, target, kind, attrs in payload.edges:
        if kind is EdgeKind.SYNC:
            extra = (attrs.get("object_id"), attrs.get("operation", ""))
        elif kind is EdgeKind.DATA:
            extra = (tuple(sorted(attrs.get("pages", ()))),)
        else:
            extra = ()
        entries.append((source, target, kind.value, extra))
    return sorted(entries, key=repr)  # object_id may be None (unorderable)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_codecs_round_trip_identically(data):
    nodes = data.draw(subcomputations())
    edges = data.draw(edges_over(nodes))
    decoded = {}
    for codec in sorted(CODECS):
        framed, raw_bytes = encode_segment(nodes, edges, codec=codec)
        assert raw_bytes > 0
        decoded[codec] = decode_segment(framed)
    reference = decoded["json"]
    for codec, payload in decoded.items():
        assert canonical_nodes(payload) == canonical_nodes(reference), codec
        assert canonical_edges(payload) == canonical_edges(reference), codec
    # And both match the original, not merely each other.
    from repro.store.segment import SegmentPayload

    original = SegmentPayload.build(nodes, edges)
    assert canonical_nodes(reference) == canonical_nodes(original)
    assert canonical_edges(reference) == canonical_edges(original)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), level=st.integers(min_value=1, max_value=9))
def test_compressed_codec_round_trips_at_every_level(data, level):
    """binary-z is binary + zlib: same graph back at every compress level."""
    from repro.store.codecs import ZlibBinarySegmentCodec
    from repro.store.segment import SegmentPayload

    nodes = data.draw(subcomputations())
    edges = data.draw(edges_over(nodes))
    codec = ZlibBinarySegmentCodec(compress_level=level)
    raw = codec.encode_payload(list(nodes), list(edges))
    assert codec.decompress_frame(codec.compress_frame(raw)) == raw
    framed, raw_bytes = encode_segment(nodes, edges, codec="binary-z")
    assert raw_bytes == len(raw)  # level never changes the raw payload
    payload = decode_segment(framed)
    original = SegmentPayload.build(nodes, edges)
    assert canonical_nodes(payload) == canonical_nodes(original)
    assert canonical_edges(payload) == canonical_edges(original)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), cut=st.integers(min_value=1, max_value=64))
def test_compressed_codec_rejects_corrupt_bodies(data, cut):
    """A truncated or garbled binary-z frame fails loudly, never silently."""
    import pytest

    from repro.errors import StoreError

    nodes = data.draw(subcomputations())
    framed, _ = encode_segment(nodes, [], codec="binary-z")
    truncated = framed[: max(13, len(framed) - cut)]
    with pytest.raises(StoreError):
        decode_segment(truncated)
    garbled = framed[:13] + bytes(reversed(framed[13:]))
    with pytest.raises(StoreError):
        decode_segment(garbled)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_stores_built_with_either_codec_answer_identically(data):
    nodes = data.draw(subcomputations())
    # A store run needs edges between *stored* nodes only.
    ids = [node.node_id for node in nodes]
    edges = [edge for edge in data.draw(edges_over(nodes)) if edge[0] in ids and edge[1] in ids]
    engines = {}
    with tempfile.TemporaryDirectory(prefix="inspector-codec-prop-") as tmp:
        for codec in sorted(CODECS):
            store = ProvenanceStore.create(os.path.join(tmp, codec))
            run_id = store.new_run(workload=f"prop-{codec}")
            store.append_segment(nodes, edges, run=run_id, codec=codec)
            store.flush()
            engines[codec] = StoreQueryEngine(ProvenanceStore.open(os.path.join(tmp, codec)))
        reference = engines["json"]
        pages = sorted({page for node in nodes for page in node.read_set | node.write_set})[:3]
        for codec, engine in engines.items():
            for node in nodes:
                assert engine.backward_slice(node.node_id, run=1) == reference.backward_slice(
                    node.node_id, run=1
                ), codec
            assert engine.lineage_of_pages(pages, run=1) == reference.lineage_of_pages(
                pages, run=1
            ), codec
            mine = engine.propagate_taint(pages, run=1)
            theirs = reference.propagate_taint(pages, run=1)
            assert mine.tainted_nodes == theirs.tainted_nodes, codec
            assert mine.tainted_pages == theirs.tainted_pages, codec

"""Property-based tests (hypothesis) for core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compression.lz import compress, decompress
from repro.core.algorithm import ProvenanceTracker
from repro.core.dependencies import derive_data_edges
from repro.core.cpg import EdgeKind
from repro.core.vector_clock import VectorClock, merge_all
from repro.memory.address_space import SharedAddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.diff import apply_diff, diff_page
from repro.memory.layout import HEAP_BASE
from repro.memory.mmu import MMU
from repro.memory.shared_commit import SharedMemoryCommitter
from repro.pt.aux_buffer import AuxRingBuffer
from repro.pt.decoder import PTDecoder
from repro.pt.encoder import PTEncoder

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #

clock_entries = st.dictionaries(st.integers(0, 7), st.integers(0, 40), max_size=6)
clocks = clock_entries.map(VectorClock)


class TestVectorClockLaws:
    @given(clocks, clocks)
    def test_merge_is_commutative(self, a, b):
        assert a.merged(b) == b.merged(a)

    @given(clocks, clocks, clocks)
    def test_merge_is_associative(self, a, b, c):
        assert a.merged(b).merged(c) == a.merged(b.merged(c))

    @given(clocks)
    def test_merge_is_idempotent(self, a):
        assert a.merged(a) == a

    @given(clocks, clocks)
    def test_merge_dominates_both_operands(self, a, b):
        merged = a.merged(b)
        assert a.dominated_by(merged)
        assert b.dominated_by(merged)

    @given(clocks, clocks)
    def test_happens_before_is_antisymmetric(self, a, b):
        assert not (a.happens_before(b) and b.happens_before(a))

    @given(clocks, clocks, clocks)
    def test_happens_before_is_transitive(self, a, b, c):
        if a.happens_before(b) and b.happens_before(c):
            assert a.happens_before(c)

    @given(clocks, clocks)
    def test_trichotomy_of_ordering(self, a, b):
        relations = [a.happens_before(b), b.happens_before(a), a == b, a.concurrent_with(b)]
        assert sum(1 for relation in relations if relation) == 1

    @given(st.lists(clocks, max_size=5))
    def test_merge_all_dominates_every_clock(self, clock_list):
        merged = merge_all(clock_list)
        assert all(clock.dominated_by(merged) for clock in clock_list)


class TestDiffProperties:
    @given(st.binary(min_size=1, max_size=256), st.binary(min_size=1, max_size=256))
    def test_diff_then_apply_reproduces_current(self, twin, current):
        size = min(len(twin), len(current))
        twin, current = twin[:size], current[:size]
        diff = diff_page(0, twin, current)
        target = bytearray(twin)
        apply_diff(target, diff)
        assert bytes(target) == current

    @given(st.binary(min_size=1, max_size=256))
    def test_identical_buffers_have_empty_diff(self, data):
        assert diff_page(0, data, data).is_empty()

    @given(st.binary(min_size=1, max_size=256), st.binary(min_size=1, max_size=256))
    def test_modified_bytes_counts_exact_differences(self, twin, current):
        size = min(len(twin), len(current))
        twin, current = twin[:size], current[:size]
        diff = diff_page(0, twin, current)
        expected = sum(1 for a, b in zip(twin, current) if a != b)
        assert diff.modified_bytes == expected


class TestCompressionProperties:
    @given(st.binary(max_size=4096))
    def test_round_trip(self, data):
        assert decompress(compress(data)) == data

    @given(st.binary(min_size=64, max_size=2048), st.integers(2, 8))
    def test_repetition_round_trip(self, chunk, repeats):
        data = chunk * repeats
        assert decompress(compress(data)) == data


class TestPTEncodeDecodeProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(st.lists(st.booleans(), max_size=400))
    def test_tnt_stream_round_trip(self, outcomes):
        aux = AuxRingBuffer(size=1 << 20)
        encoder = PTEncoder(pid=1, aux=aux, psb_period=1 << 20)
        for taken in outcomes:
            encoder.conditional_branch(taken)
        encoder.flush()
        trace = PTDecoder().decode(aux.drain())
        assert trace.tnt_bits == outcomes

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(st.lists(st.integers(0, 2**47 - 1), max_size=60))
    def test_tip_stream_round_trip(self, targets):
        aux = AuxRingBuffer(size=1 << 20)
        encoder = PTEncoder(pid=1, aux=aux, psb_period=1 << 20)
        for target in targets:
            encoder.indirect_branch(target)
        encoder.flush()
        trace = PTDecoder().decode(aux.drain())
        assert trace.tip_targets == targets

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 2**40)), max_size=120))
    def test_mixed_stream_preserves_order_per_kind(self, events):
        aux = AuxRingBuffer(size=1 << 20)
        encoder = PTEncoder(pid=1, aux=aux, psb_period=1 << 20)
        expected_bits, expected_tips = [], []
        for is_tip, value in events:
            if is_tip:
                encoder.indirect_branch(value)
                expected_tips.append(value)
            else:
                taken = bool(value & 1)
                encoder.conditional_branch(taken)
                expected_bits.append(taken)
        encoder.flush()
        trace = PTDecoder().decode(aux.drain())
        assert trace.tnt_bits == expected_bits
        assert trace.tip_targets == expected_tips


class TestAllocatorProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(st.lists(st.integers(1, 512), min_size=1, max_size=40), st.randoms())
    def test_live_allocations_never_overlap(self, sizes, rng):
        space = SharedAddressSpace(page_size=256)
        allocator = HeapAllocator(space)
        live = {}
        for index, size in enumerate(sizes):
            address = allocator.malloc(size)
            for other_address, other_size in live.items():
                assert address + size <= other_address or other_address + other_size <= address
            live[address] = size
            if live and rng.random() < 0.3:
                victim = rng.choice(sorted(live))
                allocator.free(victim)
                del live[victim]
        assert allocator.stats.live_bytes >= sum(live.values())


class TestCommitConvergence:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 3), st.integers(0, 40), st.binary(min_size=1, max_size=16)),
            min_size=1,
            max_size=30,
        )
    )
    def test_sequential_commits_equal_direct_writes(self, operations):
        """Committing after every write is equivalent to writing shared memory directly."""
        page_size = 256
        tracked = SharedAddressSpace(page_size=page_size)
        reference = SharedAddressSpace(page_size=page_size)
        mmu = MMU(tracked)
        committer = SharedMemoryCommitter(tracked)
        for pid, offset, payload in operations:
            address = HEAP_BASE + offset * 16
            mmu.write(pid, address, payload)
            committer.commit(mmu.view(pid))
            reference.write(address, payload)
        span = 48 * 16 + 32
        assert tracked.read(HEAP_BASE, span) == reference.read(HEAP_BASE, span)


class TestCPGInvariantsUnderRandomSchedules:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=25)
    @given(st.integers(0, 10_000))
    def test_random_lock_schedules_produce_acyclic_consistent_graphs(self, seed):
        rng = random.Random(seed)
        tracker = ProvenanceTracker()
        threads = [1, 2, 3]
        lock_object = 99
        holder = None
        for tid in threads:
            tracker.on_thread_start(tid)
        for _ in range(rng.randint(3, 25)):
            tid = rng.choice(threads)
            if holder is None:
                tracker.on_sync_boundary(tid, "mutex_lock")
                tracker.on_acquire(tid, lock_object)
                tracker.begin_next(tid)
                tracker.on_memory_access(tid, rng.randint(0, 5), is_write=bool(rng.getrandbits(1)))
                holder = tid
            elif holder == tid:
                tracker.on_sync_boundary(tid, "mutex_unlock")
                tracker.on_release(tid, lock_object)
                tracker.begin_next(tid)
                holder = None
        for tid in threads:
            tracker.on_thread_end(tid)
        cpg = tracker.finalize()
        derive_data_edges(cpg)
        assert cpg.is_acyclic()
        # Every sync edge must agree with the vector-clock order.
        for source, target, _ in cpg.edges(EdgeKind.SYNC):
            assert cpg.happens_before(source, target)
        # Every data edge must connect a writer to a reader of the same pages.
        for source, target, attrs in cpg.edges(EdgeKind.DATA):
            assert attrs["pages"] <= cpg.subcomputation(source).write_set
            assert attrs["pages"] <= cpg.subcomputation(target).read_set

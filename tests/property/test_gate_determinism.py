"""Property tests for the provenance gate: deterministic, order-blind.

A CI gate that flickers is worse than no gate, so these pin the three
properties ``check_against_baseline`` must hold for arbitrary recorded
executions: the verdict is a pure function of (baseline, candidate), it
does not depend on the order page sets were blessed in, and a run gated
against its own baseline always passes.  ``drift_report`` gets the same
treatment at the population level: run-group order must not matter.
"""

import os
import random
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.store import ProvenanceStore, bless_baseline, check_against_baseline, drift_report

from tests.property.test_store_roundtrip import random_cpg


def store_with_runs(seeds, segment_nodes=3):
    """A throwaway store holding one run per recorded-execution seed."""
    tmp = tempfile.mkdtemp(prefix="inspector-gate-")
    path = os.path.join(tmp, "store")
    store = ProvenanceStore.create(path)
    for seed in seeds:
        store.ingest(random_cpg(seed), segment_nodes=segment_nodes, workload=f"w{seed}")
    return store


class TestGateDeterminism:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=12)
    @given(st.integers(0, 10_000), st.integers(2, 6))
    def test_check_is_a_pure_function_of_its_inputs(self, seed, segment_nodes):
        # Runs 1 and 2 record the same execution; run 3 a different one.
        store = store_with_runs([seed, seed, seed + 1], segment_nodes=segment_nodes)
        with store:
            baseline = bless_baseline(store, run=1)
            clean = [check_against_baseline(store, baseline, run=2) for _ in range(2)]
            assert clean[0].to_dict() == clean[1].to_dict()
            drifty = [check_against_baseline(store, baseline, run=3) for _ in range(2)]
            assert drifty[0].to_dict() == drifty[1].to_dict()

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=12)
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_page_set_order_never_changes_the_verdict(self, seed, shuffle_seed):
        store = store_with_runs([seed, seed + 1])
        with store:
            pages = sorted(store.indexes_for(1).pages_touched())
            page_sets = [[page] for page in pages]
            shuffled = list(page_sets)
            random.Random(shuffle_seed).shuffle(shuffled)
            ordered = bless_baseline(store, run=1, pages=page_sets, name="a")
            permuted = bless_baseline(store, run=1, pages=shuffled, name="a")
            # Canonicalization makes the blessed snapshot order-blind...
            assert ordered.to_dict() == permuted.to_dict()
            # ...and so the verdict is too.
            report_a = check_against_baseline(store, ordered, run=2)
            report_b = check_against_baseline(store, permuted, run=2)
            assert report_a.to_dict() == report_b.to_dict()

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=12)
    @given(st.integers(0, 10_000), st.integers(2, 6))
    def test_a_run_always_passes_its_own_baseline(self, seed, segment_nodes):
        store = store_with_runs([seed], segment_nodes=segment_nodes)
        with store:
            baseline = bless_baseline(store, run=1)
            report = check_against_baseline(store, baseline, run=1)
            assert report.ok, report.explain()
            assert report.drifted_pages == []

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=8)
    @given(st.integers(0, 10_000))
    def test_identical_reingest_passes_the_gate(self, seed):
        store = store_with_runs([seed, seed])
        with store:
            report = check_against_baseline(store, bless_baseline(store, run=1), run=2)
            assert report.ok, report.explain()


class TestDriftReportDeterminism:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=8)
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_group_order_never_changes_the_report(self, seed_a, seed_b):
        store = store_with_runs([seed_a, seed_a, seed_b, seed_b])
        with store:
            forward = drift_report(store, [1, 2], [3, 4])
            scrambled = drift_report(store, [2, 1], [4, 3])
            assert forward == scrambled
            # And it is symmetric up to relabeling of the two sides.
            mirrored = drift_report(store, [3, 4], [1, 2])
            assert mirrored["ok"] == forward["ok"]
            assert mirrored["diverged_pages"] == forward["diverged_pages"]

"""Builders for sharded-store tests: multi-run stores, splits, clusters.

The cluster tests all need the same scaffolding -- a multi-run store, the
same store split onto shard directories with run ids preserved, and a
:class:`~repro.store.cluster.StoreCluster` wired to in-process or TCP
shard servers.  Building it once here keeps the unit, property, fault,
and hammer suites testing the router, not re-deriving the plumbing.

Splitting works by copy + ``gc``: each shard starts as a copy of the
whole store and drops every run it does not own.  ``gc`` never reuses
run ids, so the shard keeps the surviving runs under their original
(cluster) ids -- exactly the identity mapping the ``run-hash`` policy
requires, and a valid ``manual`` table too.
"""

from __future__ import annotations

import os
import random
import shutil
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.algorithm import ProvenanceTracker
from repro.core.dependencies import derive_data_edges
from repro.store import (
    ClusterManifest,
    Endpoint,
    InProcessShardClient,
    ProvenanceStore,
    ShardInfo,
    StoreCluster,
    StoreServer,
)


def random_cpg(seed: int):
    """Record a random 3-thread mostly-lock-ordered execution.

    Same generator as the store round-trip property suite: sync, control,
    and data edges all appear, pages are drawn from 0..7, and pages 0 and
    1 are registered inputs.
    """
    rng = random.Random(seed)
    tracker = ProvenanceTracker()
    tracker.register_input_pages({0, 1})
    threads = [1, 2, 3]
    lock = 99
    holder = None
    for tid in threads:
        tracker.on_thread_start(tid)
    for _ in range(rng.randint(5, 40)):
        tid = rng.choice(threads)
        if rng.random() < 0.2:
            tracker.on_memory_access(tid, rng.randint(0, 7), is_write=bool(rng.getrandbits(1)))
            continue
        if holder is None:
            tracker.on_sync_boundary(tid, "mutex_lock")
            tracker.on_acquire(tid, lock)
            tracker.begin_next(tid)
            tracker.on_memory_access(tid, rng.randint(0, 7), is_write=bool(rng.getrandbits(1)))
            holder = tid
        elif holder == tid:
            tracker.on_sync_boundary(tid, "mutex_unlock")
            tracker.on_release(tid, lock)
            tracker.begin_next(tid)
            holder = None
    for tid in threads:
        tracker.on_thread_end(tid)
    cpg = tracker.finalize()
    derive_data_edges(cpg)
    return cpg


def build_multirun_store(
    path: str, seeds: Sequence[int], segment_nodes: int = 4
) -> Tuple[ProvenanceStore, List[int]]:
    """Ingest one random run per seed; returns (store, run ids)."""
    store = ProvenanceStore.open_or_create(path)
    for seed in seeds:
        store.ingest(
            random_cpg(seed), workload=f"seed-{seed}", segment_nodes=segment_nodes
        )
    return store, store.run_ids()


def split_store(
    whole_path: str, shards_dir: str, owned_runs: Sequence[Iterable[int]]
) -> List[str]:
    """Split one store into len(owned_runs) shard stores, ids preserved.

    ``owned_runs[i]`` is the run set shard i keeps; every run of the
    whole store must be owned by exactly one shard.  Returns the shard
    store paths.
    """
    all_runs = set(ProvenanceStore.open(whole_path).run_ids())
    claimed = [run for runs in owned_runs for run in runs]
    if sorted(claimed) != sorted(all_runs):
        raise ValueError(
            f"owned_runs {owned_runs!r} must partition the store's runs {sorted(all_runs)}"
        )
    paths = []
    for index, keep in enumerate(owned_runs):
        shard_path = os.path.join(shards_dir, f"shard-{index}")
        shutil.copytree(whole_path, shard_path)
        drop = sorted(all_runs - set(keep))
        if drop:
            ProvenanceStore.open(shard_path).gc(runs=drop)
        paths.append(shard_path)
    return paths


def manual_manifest(
    addresses: Sequence[str],
    owned_runs: Sequence[Iterable[int]],
    replicas: Optional[Dict[int, Sequence[str]]] = None,
) -> ClusterManifest:
    """A manual-policy manifest: shard i at addresses[i] owning its runs."""
    shards = [
        ShardInfo(
            f"shard-{index}",
            Endpoint(address=address),
            replicas=[Endpoint(address=r) for r in (replicas or {}).get(index, [])],
        )
        for index, address in enumerate(addresses)
    ]
    manifest = ClusterManifest(shards=shards, policy="manual")
    for index, runs in enumerate(owned_runs):
        for run in runs:
            manifest.assign(run, f"shard-{index}")
    return manifest


class InProcessCluster:
    """A cluster whose shards are in-process servers (no sockets).

    Cheap enough for property tests: queries go through the full wire
    dispatch (``handle_request``) but skip TCP.  ``clients[address]``
    exposes each :class:`InProcessShardClient` so a test can mark a
    shard ``down``.
    """

    def __init__(
        self,
        whole_path: str,
        shards_dir: str,
        owned_runs: Sequence[Iterable[int]],
        policy: str = "manual",
        **cluster_kwargs,
    ) -> None:
        paths = split_store(whole_path, shards_dir, owned_runs)
        self.servers = [StoreServer(path) for path in paths]
        addresses = [f"mem://{index}" for index in range(len(paths))]
        self.clients = {
            address: InProcessShardClient(server, address)
            for address, server in zip(addresses, self.servers)
        }
        if policy == "manual":
            self.manifest = manual_manifest(addresses, owned_runs)
        else:
            self.manifest = ClusterManifest(
                shards=[
                    ShardInfo(f"shard-{i}", Endpoint(address=a))
                    for i, a in enumerate(addresses)
                ],
                policy=policy,
            )
        self.cluster = StoreCluster(
            self.manifest,
            client_factory=lambda address: self.clients[address],
            **cluster_kwargs,
        )

    def close(self) -> None:
        for server in self.servers:
            server.close()

    def __enter__(self) -> "InProcessCluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def hash_partition(runs: Sequence[int], n_shards: int) -> List[List[int]]:
    """The run sets the ``run-hash`` policy expects shard i to hold."""
    owned: List[List[int]] = [[] for _ in range(n_shards)]
    for run in runs:
        owned[run % n_shards].append(run)
    return owned

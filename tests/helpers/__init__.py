"""Shared test fixtures: fault injection (:mod:`helpers.faults`) and
cluster builders (:mod:`helpers.clusters`)."""

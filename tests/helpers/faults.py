"""Network fault injection for the store's wire-protocol tests.

:class:`ChaosProxy` is a TCP proxy that misbehaves on purpose: it sits in
front of a real :class:`repro.store.server.StoreServer` (or nothing at
all) and scripts the failure modes a client must survive --

``pass``
    Forward faithfully (the control case; also what a connection beyond
    the ``fault_budget`` gets).
``drop``
    Accept the connection and close it immediately without reading --
    the "listener up, service dead" shape (what the old ad-hoc
    ``flaky_listener`` in ``test_store_server.py`` simulated).
``reset``
    Accept, then close with ``SO_LINGER(1, 0)`` so the peer sees a hard
    TCP RST instead of an orderly FIN.
``delay``
    Hold the connection for ``delay`` seconds before forwarding.
``half_close``
    Forward the request, then deliver only the first
    ``half_close_bytes`` bytes of the response and cut the connection --
    the mid-response failure that distinguishes "request may have been
    applied" from "request never arrived".

``fault_budget=N`` makes only the first N connections misbehave and every
later one pass through -- the recovery script ("down, down, then back")
that backoff-retry tests want.  Counters (``connections``, ``faulted``)
record what actually happened so tests can assert the fault really fired.

:func:`crashable_server` complements the proxy with process-level chaos:
a store server that can be killed and brought back *on the same port*,
for replica-failover and crash-recovery tests.

The disk-fault helpers (:func:`flip_bytes`, :func:`truncate_file`,
:func:`delete_file`) are the storage-side counterpart: surgical damage to
store files for the integrity tests (bit rot, torn writes, lost files).
"""

from __future__ import annotations

import contextlib
import os
import socket
import struct
import threading
import time
from typing import Iterator, Optional, Tuple

from repro.store.server import StoreServer

#: Modes ChaosProxy knows how to misbehave in.
MODES = ("pass", "drop", "reset", "delay", "half_close")


# ---------------------------------------------------------------------- #
# Disk faults (storage-side chaos for the integrity tests)
# ---------------------------------------------------------------------- #


def flip_bytes(path: str, offset: int, count: int = 1) -> bytes:
    """Bit-rot ``count`` bytes of ``path`` at ``offset`` (XOR 0xFF) in place.

    A negative ``offset`` counts from the end of the file, like a slice
    index.  Returns the original bytes so a test can undo the damage.
    Raises if the range falls outside the file -- silent no-op damage
    would make a "corruption detected" assertion vacuous.
    """
    size = os.path.getsize(path)
    start = offset if offset >= 0 else size + offset
    if start < 0 or start + count > size:
        raise ValueError(
            f"flip_bytes range [{start}, {start + count}) outside {path!r} "
            f"({size} bytes)"
        )
    with open(path, "r+b") as handle:
        handle.seek(start)
        original = handle.read(count)
        handle.seek(start)
        handle.write(bytes(b ^ 0xFF for b in original))
    return original


def truncate_file(path: str, keep_bytes: Optional[int] = None, drop_bytes: int = 1) -> int:
    """Tear the tail off ``path``: keep ``keep_bytes``, or drop ``drop_bytes``.

    The torn-write shape (a crash mid-append).  Returns the new size.
    """
    size = os.path.getsize(path)
    keep = keep_bytes if keep_bytes is not None else size - drop_bytes
    if keep < 0 or keep > size:
        raise ValueError(f"cannot keep {keep} of {size} bytes of {path!r}")
    os.truncate(path, keep)
    return keep


def delete_file(path: str) -> None:
    """Lose ``path`` entirely (the disk ate it).  Missing files raise."""
    os.unlink(path)


class ChaosProxy:
    """A scriptable TCP proxy injecting transport faults (see module doc).

    Args:
        target: ``(host, port)`` to forward to; optional for the modes
            that never forward (``drop``, ``reset``).
        mode: One of :data:`MODES`; mutable at any time.
        fault_budget: Misbehave for only the first N connections, then
            pass through.  ``None`` faults every connection.
        delay: Seconds ``delay`` mode holds a connection.
        half_close_bytes: Response bytes ``half_close`` lets through.
    """

    def __init__(
        self,
        target: Optional[Tuple[str, int]] = None,
        mode: str = "pass",
        fault_budget: Optional[int] = None,
        delay: float = 0.2,
        half_close_bytes: int = 10,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown chaos mode {mode!r} (known: {', '.join(MODES)})")
        self.target = target
        self.mode = mode
        self.fault_budget = fault_budget
        self.delay = delay
        self.half_close_bytes = half_close_bytes
        self.connections = 0
        self.faulted = 0
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self._closed = False
        self._close_event = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        return self._listener.getsockname()[:2]

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._handle, args=(conn,), daemon=True).start()

    def _decide(self) -> str:
        """Pick this connection's mode and bump the counters."""
        with self._lock:
            index = self.connections
            self.connections += 1
            budget = self.fault_budget
            mode = self.mode
            if mode != "pass" and (budget is None or index < budget):
                self.faulted += 1
                return mode
            return "pass"

    def _handle(self, conn: socket.socket) -> None:
        mode = self._decide()
        try:
            if mode == "drop":
                conn.close()
                return
            if mode == "reset":
                # SO_LINGER with zero timeout turns close() into a RST.
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
                conn.close()
                return
            if mode == "delay":
                # Deadline wait, not a fixed sleep: closing the proxy
                # releases held connections immediately instead of
                # leaving a teardown stuck behind the full delay.
                self._close_event.wait(self.delay)
            if self.target is None:
                # Nothing to forward to: behave like a dead service.
                conn.close()
                return
            limit = self.half_close_bytes if mode == "half_close" else None
            self._forward(conn, limit)
        except OSError:
            pass  # a torn connection is this proxy's job, not an error
        finally:
            with contextlib.suppress(OSError):
                conn.close()

    def _forward(self, conn: socket.socket, response_limit: Optional[int]) -> None:
        """Pump bytes both ways; optionally cut the response short."""
        upstream = socket.create_connection(self.target, timeout=30)

        def pump_request() -> None:
            with contextlib.suppress(OSError):
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        upstream.shutdown(socket.SHUT_WR)
                        return
                    upstream.sendall(chunk)

        requester = threading.Thread(target=pump_request, daemon=True)
        requester.start()
        sent = 0
        try:
            while True:
                chunk = upstream.recv(65536)
                if not chunk:
                    with contextlib.suppress(OSError):
                        conn.shutdown(socket.SHUT_WR)
                    break
                if response_limit is not None:
                    chunk = chunk[: max(response_limit - sent, 0)]
                    if chunk:
                        conn.sendall(chunk)
                        sent += len(chunk)
                    if sent >= response_limit:
                        # Mid-response cut: the client got a prefix and
                        # will never see the rest, nor a clean close from
                        # the server's side.
                        conn.setsockopt(
                            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                        )
                        break
                else:
                    conn.sendall(chunk)
        finally:
            with contextlib.suppress(OSError):
                upstream.close()
        requester.join(timeout=5)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._close_event.set()
            self._listener.close()
            self._thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class CrashableServer:
    """A store server that can die and come back on the same port.

    ``crash()`` closes the server (in-flight connections break, new ones
    are refused); ``restart()`` opens a fresh one bound to the recorded
    port -- a fresh snapshot of the same store, which is exactly what a
    recovered shard or a promoted replica serves.
    """

    def __init__(self, store_path: str, **server_kwargs) -> None:
        self.store_path = store_path
        self.server_kwargs = server_kwargs
        self.server: Optional[StoreServer] = StoreServer(store_path, **server_kwargs)
        self.host, self.port = self.server.start()
        self.crashes = 0

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"{self.host}:{self.port}"

    def crash(self) -> None:
        if self.server is not None:
            self.server.close()
            self.server = None
            self.crashes += 1

    def restart(self) -> StoreServer:
        if self.server is not None:
            return self.server
        kwargs = dict(self.server_kwargs)
        kwargs["host"] = self.host
        kwargs["port"] = self.port
        deadline = time.time() + 5.0
        while True:
            # The dying listener's socket may linger briefly even with
            # SO_REUSEADDR; retry the bind until the OS lets go.
            try:
                self.server = StoreServer(self.store_path, **kwargs)
                break
            except OSError:
                if time.time() >= deadline:
                    raise
                time.sleep(0.05)
        self.server.start()
        return self.server

    def close(self) -> None:
        if self.server is not None:
            self.server.close()
            self.server = None


@contextlib.contextmanager
def crashable_server(store_path: str, **server_kwargs) -> Iterator[CrashableServer]:
    """Context-managed :class:`CrashableServer` (closed on exit)."""
    crashable = CrashableServer(store_path, **server_kwargs)
    try:
        yield crashable
    finally:
        crashable.close()

"""Fleet-test scaffolding: tiny specs, populated stores, warm readers.

The integration tests around the operations layer (gating, autopilot,
fleets) all need the same two ingredients: a store populated by a small
deterministic fleet, and a pack of warm readers hammering a query while
maintenance churns underneath.  Building them here keeps the tests about
their assertions, not their setup.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

from repro.core.serialization import node_key
from repro.store.fleet import FleetResult, FleetSpec, run_fleet
from repro.store.server import StoreClient


def tiny_fleet_spec(runs: int = 3, concurrency: int = 1, **overrides) -> FleetSpec:
    """A fleet small enough for a unit-test budget, deterministic by default."""
    spec = dict(
        workloads=("histogram",),
        runs=runs,
        concurrency=concurrency,
        size="small",
        threads=(2,),
        seeds=(42,),
        fleet_seed=99,
    )
    spec.update(overrides)
    return FleetSpec(**spec)


def populate_fleet_store(store_path: str, runs: int = 3, **overrides) -> FleetResult:
    """Ingest a tiny fleet into ``store_path``; every member must succeed."""
    result = run_fleet(tiny_fleet_spec(runs=runs, **overrides), store_path=store_path)
    failed = [run for run in result.runs if run.error is not None]
    assert not failed, f"fleet members failed: {[run.to_dict() for run in failed]}"
    return result


class WarmReaders:
    """N reader threads repeating one lineage query against a server.

    Every answer's node-key signature and every raised error is recorded;
    a soak asserts ``errors == []`` and ``len(answers) == 1`` -- the
    readers never saw a torn or shifting answer while maintenance ran.
    """

    def __init__(
        self,
        url: str,
        pages: Sequence[int],
        run: Optional[int],
        readers: int = 4,
        interval_s: float = 0.01,
    ) -> None:
        self.url = url
        self.pages = list(pages)
        self.run = run
        self.readers = readers
        self.interval_s = interval_s
        self.errors: List[str] = []
        self.answers: set = set()
        self.queries = 0
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []

    def _loop(self) -> None:
        # One client per thread: nothing shared, nothing to contend on.
        client = StoreClient.from_url(self.url)
        while not self._stop.is_set():
            try:
                nodes = client.lineage(self.pages, run=self.run)
                signature: Tuple[str, ...] = tuple(sorted(node_key(n) for n in nodes))
                with self._lock:
                    self.queries += 1
                    self.answers.add(signature)
            except Exception as exc:  # noqa: BLE001 - the soak's assertion
                with self._lock:
                    self.errors.append(f"{type(exc).__name__}: {exc}")
            self._stop.wait(self.interval_s)

    def start(self) -> "WarmReaders":
        if not self._threads:
            self._stop.clear()
            self._threads = [
                threading.Thread(target=self._loop, name=f"warm-reader-{i}", daemon=True)
                for i in range(self.readers)
            ]
            for thread in self._threads:
                thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads = []

    def __enter__(self) -> "WarmReaders":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

"""Tests for the warm query server (:mod:`repro.store.server`).

The server holds one decoded-segment cache and one index pinner across
many concurrent read-only queries; these tests check protocol round-trips
against the direct engine, per-query stats, snapshot refresh, and a
multithreaded reader hammer over one warm cache.
"""

import threading

import pytest

from repro.core.algorithm import ProvenanceTracker
from repro.core.dependencies import derive_data_edges
from repro.core.queries import (
    backward_slice,
    forward_slice,
    lineage_of_pages,
    propagate_taint,
)
from repro.errors import StoreError
from repro.store import ProvenanceStore, StoreClient, StoreServer


def build_cpg(threads: int = 3, steps: int = 3):
    tracker = ProvenanceTracker()
    tracker.register_input_pages({500, 501})
    lock = 9
    for tid in range(1, threads + 1):
        tracker.on_thread_start(tid)
    page = 0
    for step in range(steps):
        for tid in range(1, threads + 1):
            tracker.on_sync_boundary(tid, "mutex_lock")
            tracker.on_acquire(tid, lock)
            tracker.begin_next(tid)
            tracker.on_memory_access(tid, 500 if step == 0 else page - 1, is_write=False)
            tracker.on_memory_access(tid, page, is_write=True)
            page += 1
            tracker.on_sync_boundary(tid, "mutex_unlock")
            tracker.on_release(tid, lock)
            tracker.begin_next(tid)
    for tid in range(1, threads + 1):
        tracker.on_thread_end(tid)
    cpg = tracker.finalize()
    derive_data_edges(cpg)
    return cpg


@pytest.fixture()
def served(tmp_path):
    """A two-run store with a running server; yields (cpg, dir, server, client)."""
    cpg = build_cpg()
    store_dir = str(tmp_path / "store")
    store = ProvenanceStore.create(store_dir)
    store.ingest(cpg, segment_nodes=3)
    store.ingest(cpg, segment_nodes=3)
    server = StoreServer(store_dir, parallelism=2)
    host, port = server.start()
    client = StoreClient(host, port, timeout=10.0)
    yield cpg, store_dir, server, client
    server.close()


class TestProtocol:
    def test_ping_info_runs(self, served):
        _, store_dir, _, client = served
        assert client.ping() is True
        info = client.info()
        assert info["segments"] == ProvenanceStore.open(store_dir).manifest.segment_count
        assert [run["id"] for run in client.runs()] == [1, 2]

    def test_queries_match_direct_engine(self, served):
        cpg, _, _, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        assert client.backward_slice(origin, run=1) == backward_slice(cpg, origin)
        assert client.forward_slice((1, 0), run=2) == forward_slice(cpg, (1, 0))
        assert client.lineage(pages, run=1) == lineage_of_pages(cpg, pages)
        taint = client.taint(pages, run=2)
        expected = propagate_taint(cpg, pages)
        assert taint["tainted_nodes"] == expected.tainted_nodes
        assert set(taint["tainted_pages"]) == expected.tainted_pages
        across = client.lineage_across_runs(pages)
        assert across == {1: lineage_of_pages(cpg, pages), 2: lineage_of_pages(cpg, pages)}

    def test_compare_lineage_roundtrip(self, served):
        cpg, _, _, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        page = sorted(cpg.subcomputation(origin).write_set)[0]
        diff = client.result("compare_lineage", run_a=1, run_b=2, pages=page)
        assert diff["identical"] is True
        assert diff["only_a"] == [] and diff["only_b"] == []

    def test_per_query_stats_show_warm_hits(self, served):
        cpg, _, _, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        cold = client.request("lineage", pages=pages, run=1)["stats"]
        assert cold["cache_misses"] > 0 and cold["segments_read"] == cold["cache_misses"]
        warm = client.request("lineage", pages=pages, run=1)["stats"]
        assert warm["segments_read"] == 0
        assert warm["cache_hits"] > 0
        assert warm["elapsed_ms"] >= 0

    def test_bad_requests_are_errors_not_disconnects(self, served):
        _, _, _, client = served
        with pytest.raises(StoreError, match="unknown op"):
            client.request("frobnicate")
        with pytest.raises(StoreError, match="bad request parameters"):
            client.request("lineage")  # pages missing
        with pytest.raises(StoreError, match="no run"):
            client.request("lineage", pages=[1], run=99)
        with pytest.raises(StoreError, match="malformed node key"):
            client.request("slice", node="garbage", run=1)
        assert client.ping() is True  # the server survived all of it

    def test_server_stats_and_shutdown(self, served):
        _, _, server, client = served
        client.ping()
        stats = client.stats()
        assert stats["queries_served"] >= 1
        assert stats["runs"] == 2
        assert stats["segment_cache"]["max_bytes"] > 0
        assert client.shutdown()["stopping"] is True


class TestSnapshotRefresh:
    def test_refresh_picks_up_new_runs_and_keeps_the_cache_warm(self, served):
        cpg, store_dir, server, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        client.lineage(pages, run=1)  # warm the cache
        assert len(server.cache) > 0
        # A writer lands a third run between snapshots...
        writer = ProvenanceStore.open(store_dir)
        writer.ingest(cpg, segment_nodes=3)
        assert [run["id"] for run in client.runs()] == [1, 2]  # snapshot: unchanged
        refreshed = client.refresh()
        assert refreshed["runs"] == 3
        assert [run["id"] for run in client.runs()] == [1, 2, 3]
        # ...and the warm entries survived the snapshot swap.
        assert len(server.cache) > 0
        warm = client.request("lineage", pages=pages, run=1)["stats"]
        assert warm["segments_read"] == 0 and warm["cache_hits"] > 0
        assert client.lineage(pages, run=3) == lineage_of_pages(cpg, pages)

    def test_refresh_drops_warm_state_for_a_recreated_store(self, served, tmp_path):
        """Deleting + recreating the store directory must not serve stale bytes."""
        import shutil

        cpg, store_dir, server, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        client.lineage(pages, run=1)  # warm the cache against the old store
        assert len(server.cache) > 0
        # Recreate the directory: a *different* graph, counters restarted.
        shutil.rmtree(store_dir)
        different = build_cpg(threads=2, steps=2)
        recreated = ProvenanceStore.create(store_dir)
        recreated.ingest(different, segment_nodes=3)
        client.refresh()
        assert [run["id"] for run in client.runs()] == [1]
        # Answers come from the recreated store, not the stale warm state:
        # a page both graphs touched gets the new graph's lineage, and the
        # old graph's origin node (absent from the new one) is an error,
        # not a cached payload.
        assert client.lineage([0], run=1) == lineage_of_pages(different, [0])
        with pytest.raises(StoreError, match="no sub-computation"):
            client.backward_slice(origin, run=1)


class TestHammer:
    def test_concurrent_readers_over_one_warm_cache(self, served):
        cpg, _, server, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        seed = sorted(cpg.subcomputation(cpg.input_node).write_set)
        expected_slice = backward_slice(cpg, origin)
        expected_lineage = lineage_of_pages(cpg, pages)
        expected_flood = propagate_taint(cpg, seed).tainted_nodes
        errors = []
        rounds = 8

        def reader(tid: int) -> None:
            try:
                for round_no in range(rounds):
                    run = 1 + (tid + round_no) % 2
                    assert client.backward_slice(origin, run=run) == expected_slice
                    assert client.lineage(pages, run=run) == expected_lineage
                    taint = client.taint(seed, run=run)
                    assert taint["tainted_nodes"] == expected_flood
                    assert client.lineage_across_runs(pages) == {
                        1: expected_lineage,
                        2: expected_lineage,
                    }
            except Exception as exc:  # noqa: BLE001 - reported via the main thread
                errors.append((tid, exc))

        threads = [threading.Thread(target=reader, args=(tid,)) for tid in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"hammer readers failed: {errors[:3]}"
        stats = server.server_stats()
        assert stats["queries_served"] >= 6 * rounds * 4
        assert stats["segment_cache"]["hits"] > 0
        # The byte budget held under concurrency as well.
        assert server.cache.total_bytes <= server.cache.max_bytes
        assert server.cache.peak_bytes <= server.cache.max_bytes

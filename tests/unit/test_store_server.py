"""Tests for the warm query server (:mod:`repro.store.server`).

The server holds one decoded-segment cache and one index pinner across
many concurrent read-only queries; these tests check protocol round-trips
against the direct engine, per-query stats, snapshot refresh, and a
multithreaded reader hammer over one warm cache -- plus the full-duplex
surface: remote ingest through a writable server, follow-mode bounded
staleness, live-tail ``watch`` streams, and the client's retry policy.
"""

import os
import socket
import tempfile
import threading
import time
from collections import defaultdict

import pytest

from helpers.faults import ChaosProxy

from repro.core.algorithm import ProvenanceTracker
from repro.core.cpg import EdgeKind
from repro.core.dependencies import derive_data_edges
from repro.core.queries import (
    backward_slice,
    forward_slice,
    lineage_of_pages,
    propagate_taint,
)
from repro.errors import StoreError, StoreUnreachableError
from repro.inspector.api import run_with_provenance
from repro.store import (
    ProvenanceStore,
    RemoteStoreSink,
    StoreClient,
    StoreQueryEngine,
    StoreServer,
    StoreSink,
)


def build_cpg(threads: int = 3, steps: int = 3):
    tracker = ProvenanceTracker()
    tracker.register_input_pages({500, 501})
    lock = 9
    for tid in range(1, threads + 1):
        tracker.on_thread_start(tid)
    page = 0
    for step in range(steps):
        for tid in range(1, threads + 1):
            tracker.on_sync_boundary(tid, "mutex_lock")
            tracker.on_acquire(tid, lock)
            tracker.begin_next(tid)
            tracker.on_memory_access(tid, 500 if step == 0 else page - 1, is_write=False)
            tracker.on_memory_access(tid, page, is_write=True)
            page += 1
            tracker.on_sync_boundary(tid, "mutex_unlock")
            tracker.on_release(tid, lock)
            tracker.begin_next(tid)
    for tid in range(1, threads + 1):
        tracker.on_thread_end(tid)
    cpg = tracker.finalize()
    derive_data_edges(cpg)
    return cpg


@pytest.fixture()
def served(tmp_path):
    """A two-run store with a running server; yields (cpg, dir, server, client)."""
    cpg = build_cpg()
    store_dir = str(tmp_path / "store")
    store = ProvenanceStore.create(store_dir)
    store.ingest(cpg, segment_nodes=3)
    store.ingest(cpg, segment_nodes=3)
    server = StoreServer(store_dir, parallelism=2)
    host, port = server.start()
    client = StoreClient(host, port, timeout=10.0)
    yield cpg, store_dir, server, client
    server.close()


class TestProtocol:
    def test_ping_info_runs(self, served):
        _, store_dir, _, client = served
        assert client.ping() is True
        info = client.info()
        assert info["segments"] == ProvenanceStore.open(store_dir).manifest.segment_count
        assert [run["id"] for run in client.runs()] == [1, 2]

    def test_queries_match_direct_engine(self, served):
        cpg, _, _, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        assert client.backward_slice(origin, run=1) == backward_slice(cpg, origin)
        assert client.forward_slice((1, 0), run=2) == forward_slice(cpg, (1, 0))
        assert client.lineage(pages, run=1) == lineage_of_pages(cpg, pages)
        taint = client.taint(pages, run=2)
        expected = propagate_taint(cpg, pages)
        assert taint["tainted_nodes"] == expected.tainted_nodes
        assert set(taint["tainted_pages"]) == expected.tainted_pages
        across = client.lineage_across_runs(pages)
        assert across == {1: lineage_of_pages(cpg, pages), 2: lineage_of_pages(cpg, pages)}

    def test_compare_lineage_roundtrip(self, served):
        cpg, _, _, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        page = sorted(cpg.subcomputation(origin).write_set)[0]
        diff = client.result("compare_lineage", run_a=1, run_b=2, pages=page)
        assert diff["identical"] is True
        assert diff["only_a"] == [] and diff["only_b"] == []

    def test_per_query_stats_show_warm_hits(self, served):
        cpg, _, _, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        cold = client.request("lineage", pages=pages, run=1)["stats"]
        assert cold["cache_misses"] > 0 and cold["segments_read"] == cold["cache_misses"]
        warm = client.request("lineage", pages=pages, run=1)["stats"]
        assert warm["segments_read"] == 0
        assert warm["cache_hits"] > 0
        assert warm["elapsed_ms"] >= 0

    def test_bad_requests_are_errors_not_disconnects(self, served):
        _, _, _, client = served
        with pytest.raises(StoreError, match="unknown op"):
            client.request("frobnicate")
        with pytest.raises(StoreError, match="bad request parameters"):
            client.request("lineage")  # pages missing
        with pytest.raises(StoreError, match="no run"):
            client.request("lineage", pages=[1], run=99)
        with pytest.raises(StoreError, match="malformed node key"):
            client.request("slice", node="garbage", run=1)
        assert client.ping() is True  # the server survived all of it

    def test_server_stats_and_shutdown(self, served):
        _, _, server, client = served
        client.ping()
        stats = client.stats()
        assert stats["queries_served"] >= 1
        assert stats["runs"] == 2
        assert stats["segment_cache"]["max_bytes"] > 0
        assert client.shutdown()["stopping"] is True


class TestSnapshotRefresh:
    def test_refresh_picks_up_new_runs_and_keeps_the_cache_warm(self, served):
        cpg, store_dir, server, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        client.lineage(pages, run=1)  # warm the cache
        assert len(server.cache) > 0
        # A writer lands a third run between snapshots...
        writer = ProvenanceStore.open(store_dir)
        writer.ingest(cpg, segment_nodes=3)
        assert [run["id"] for run in client.runs()] == [1, 2]  # snapshot: unchanged
        refreshed = client.refresh()
        assert refreshed["runs"] == 3
        assert [run["id"] for run in client.runs()] == [1, 2, 3]
        # ...and the warm entries survived the snapshot swap.
        assert len(server.cache) > 0
        warm = client.request("lineage", pages=pages, run=1)["stats"]
        assert warm["segments_read"] == 0 and warm["cache_hits"] > 0
        assert client.lineage(pages, run=3) == lineage_of_pages(cpg, pages)

    def test_refresh_drops_warm_state_for_a_recreated_store(self, served, tmp_path):
        """Deleting + recreating the store directory must not serve stale bytes."""
        import shutil

        cpg, store_dir, server, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        client.lineage(pages, run=1)  # warm the cache against the old store
        assert len(server.cache) > 0
        # Recreate the directory: a *different* graph, counters restarted.
        shutil.rmtree(store_dir)
        different = build_cpg(threads=2, steps=2)
        recreated = ProvenanceStore.create(store_dir)
        recreated.ingest(different, segment_nodes=3)
        client.refresh()
        assert [run["id"] for run in client.runs()] == [1]
        # Answers come from the recreated store, not the stale warm state:
        # a page both graphs touched gets the new graph's lineage, and the
        # old graph's origin node (absent from the new one) is an error,
        # not a cached payload.
        assert client.lineage([0], run=1) == lineage_of_pages(different, [0])
        with pytest.raises(StoreError, match="no sub-computation"):
            client.backward_slice(origin, run=1)

    def test_explicit_refreshes_serialize_with_follow_refreshes(self, served):
        # refresh() takes the refresh lock itself, so the explicit op can
        # never interleave with a follow-mode refresh and install the
        # older of two freshly opened snapshots last: a follow reader's
        # view of the store only ever moves forward, even while explicit
        # refreshes hammer the server and a writer checkpoints under it.
        cpg, store_dir, server, _ = served
        errors = []
        stop = threading.Event()

        def explicit():
            try:
                while not stop.is_set():
                    server.refresh()
                    time.sleep(0.001)
            except Exception as exc:  # noqa: BLE001 - reported via the main thread
                errors.append(exc)

        threads = [threading.Thread(target=explicit) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            host, port = server.address
            follow = StoreClient(host, port, timeout=10.0, refresh_mode="follow")
            writer = ProvenanceStore.open(store_dir)
            seen = 0
            for _ in range(5):
                writer.ingest(cpg, segment_nodes=3)
                count = len(follow.runs())
                assert count >= seen, "the served view went backwards"
                seen = count
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, f"explicit refreshes failed: {errors[:3]}"
        assert len(follow.runs()) == 7


class TestHammer:
    def test_concurrent_readers_over_one_warm_cache(self, served):
        cpg, _, server, client = served
        origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        pages = sorted(cpg.subcomputation(origin).write_set)[:1]
        seed = sorted(cpg.subcomputation(cpg.input_node).write_set)
        expected_slice = backward_slice(cpg, origin)
        expected_lineage = lineage_of_pages(cpg, pages)
        expected_flood = propagate_taint(cpg, seed).tainted_nodes
        errors = []
        rounds = 8

        def reader(tid: int) -> None:
            try:
                for round_no in range(rounds):
                    run = 1 + (tid + round_no) % 2
                    assert client.backward_slice(origin, run=run) == expected_slice
                    assert client.lineage(pages, run=run) == expected_lineage
                    taint = client.taint(seed, run=run)
                    assert taint["tainted_nodes"] == expected_flood
                    assert client.lineage_across_runs(pages) == {
                        1: expected_lineage,
                        2: expected_lineage,
                    }
            except Exception as exc:  # noqa: BLE001 - reported via the main thread
                errors.append((tid, exc))

        threads = [threading.Thread(target=reader, args=(tid,)) for tid in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"hammer readers failed: {errors[:3]}"
        stats = server.server_stats()
        assert stats["queries_served"] >= 6 * rounds * 4
        assert stats["segment_cache"]["hits"] > 0
        # The byte budget held under concurrency as well.
        assert server.cache.total_bytes <= server.cache.max_bytes
        assert server.cache.peak_bytes <= server.cache.max_bytes


# ---------------------------------------------------------------------- #
# Client retry policy
# ---------------------------------------------------------------------- #


class TestClientRetry:
    def test_dead_server_surfaces_store_error_after_retries(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = StoreClient("127.0.0.1", port, timeout=2.0, retries=1, backoff=0.001)
        with pytest.raises(StoreUnreachableError, match="unreachable after 2 attempts"):
            client.ping()

    def test_idempotent_ops_retry_but_sent_ingest_ops_fail_fast(self):
        # ChaosProxy in drop mode: accepts and immediately closes, the
        # "listener up, service dead" shape the old ad-hoc socket loop
        # here used to hand-roll.
        with ChaosProxy(mode="drop") as proxy:
            host, port = proxy.address
            client = StoreClient(host, port, timeout=2.0, retries=2, backoff=0.001)
            # Read op: the dropped reply is retried until retries exhaust.
            with pytest.raises(StoreError, match="unreachable after 3 attempts"):
                client.request("ping")
            assert proxy.connections == 3
            # Ingest op: once sent, a blind resend could double-apply.
            proxy.connections = 0
            with pytest.raises(StoreError, match="non-idempotent"):
                client.request("begin_run", workload="x")
            assert proxy.connections == 1

    def test_exhaustion_raises_immediately_without_trailing_backoff(self):
        # Regression guard: backoff must only be paid *between* attempts.
        # With retries=2 the sleeps are 0.2 + 0.4 = 0.6s; a buggy loop
        # that also sleeps the next doubled delay (0.8s) after the final
        # failure would push well past the 1.1s bound asserted here.
        with ChaosProxy(mode="drop") as proxy:
            host, port = proxy.address
            client = StoreClient(host, port, timeout=2.0, retries=2, backoff=0.2)
            start = time.monotonic()
            with pytest.raises(StoreUnreachableError, match="unreachable after 3 attempts"):
                client.request("ping")
            elapsed = time.monotonic() - start
        assert proxy.connections == 3
        assert 0.6 <= elapsed < 1.1, (
            f"exhaustion took {elapsed:.3f}s; the inter-attempt sleeps total "
            f"0.6s, so anything near 1.4s means a trailing backoff slipped back in"
        )

    def test_reset_and_half_close_faults_are_retried_through(self):
        # A real server behind the proxy: the first connection dies with
        # a hard RST (or a half-delivered response); the retry passes
        # through and must return the real answer.
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "store")
            ProvenanceStore.create(path).ingest(build_cpg(), workload="chaos")
            server = StoreServer(path)
            server.start()
            try:
                for mode in ("reset", "half_close"):
                    with ChaosProxy(
                        target=server.address, mode=mode, fault_budget=1
                    ) as proxy:
                        host, port = proxy.address
                        client = StoreClient(
                            host, port, timeout=5.0, retries=3, backoff=0.01
                        )
                        assert client.ping() is True
                        assert proxy.faulted == 1
                        assert proxy.connections >= 2
            finally:
                server.close()

    def test_from_url_forms(self):
        assert StoreClient.from_url("localhost:7000").port == 7000
        assert StoreClient.from_url("store://box:7001").host == "box"
        assert StoreClient.from_url("tcp://box:7002").port == 7002
        with pytest.raises(StoreError, match="unsupported store url scheme"):
            StoreClient.from_url("http://box:80")
        with pytest.raises(StoreError, match="malformed store url"):
            StoreClient.from_url("no-port-here")


# ---------------------------------------------------------------------- #
# Remote ingest + live tail
# ---------------------------------------------------------------------- #


def publish_run(sink, cpg, pause_every=0, pause=0.0):
    """Feed ``cpg`` through ``sink`` exactly as a live tracker would.

    Nodes go out in topological order with the control/sync edges
    recorded at their publication; the derived data edges ship in
    ``finish`` (they need the full happens-before order), same as a real
    traced run.
    """
    edges_by_target = defaultdict(list)
    for source, target, attrs in cpg.edges():
        kind = attrs["kind"]
        if kind is EdgeKind.DATA:
            continue
        extra = {key: value for key, value in attrs.items() if key != "kind"}
        edges_by_target[target].append((source, target, kind, extra))
    for position, node_id in enumerate(cpg.topological_order()):
        sink.subcomputation_published(
            cpg.subcomputation(node_id), edges_by_target.get(node_id, [])
        )
        if pause_every and position % pause_every == pause_every - 1:
            time.sleep(pause)
    sink.finish(cpg)


def canonical_edges(cpg):
    entries = []
    for source, target, attrs in cpg.edges():
        kind = attrs["kind"]
        if kind is EdgeKind.SYNC:
            extra = (attrs.get("object_id"), attrs.get("operation", ""))
        elif kind is EdgeKind.DATA:
            extra = (tuple(sorted(attrs.get("pages", ()))),)
        else:
            extra = ()
        entries.append((source, target, kind.value, extra))
    return sorted(entries)


@pytest.fixture()
def writable(tmp_path):
    """An empty writable server; yields (dir, server, host, port)."""
    store_dir = str(tmp_path / "remote")
    ProvenanceStore.create(store_dir)
    server = StoreServer(store_dir, parallelism=2, writable=True)
    host, port = server.start()
    yield store_dir, server, host, port
    server.close()


class TestRemoteIngest:
    def test_read_only_server_rejects_ingest_ops(self, served):
        _, _, _, client = served
        for op, params in (
            ("begin_run", {"workload": "x"}),
            ("append_epoch", {"run": 1, "segment": ""}),
            ("commit_run", {"run": 1}),
        ):
            with pytest.raises(StoreError, match="read-only"):
                client.request(op, **params)
        assert client.ping() is True

    def test_ingest_ops_require_an_active_run(self, writable):
        _, _, host, port = writable
        client = StoreClient(host, port, timeout=10.0)
        with pytest.raises(StoreError, match="no active remote ingest"):
            client.commit_run(99)
        with pytest.raises(StoreError, match="not valid base64"):
            run_id = client.begin_run(workload="x")
            client.request("append_epoch", run=run_id, segment="!!!not base64!!!")

    def test_remote_run_matches_local_reference_and_feeds_live_tail(self, writable, tmp_path):
        cpg = build_cpg()
        seed_page = sorted(cpg.subcomputation(cpg.input_node).write_set)[:1]
        expected_lineage = lineage_of_pages(cpg, seed_page)

        # The reference: the identical publication stream into a local sink.
        reference_dir = str(tmp_path / "reference")
        reference_store = ProvenanceStore.create(reference_dir)
        local_sink = StoreSink(reference_store, segment_nodes=3, workload="e2e")
        publish_run(local_sink, cpg)

        store_dir, server, host, port = writable
        sink = RemoteStoreSink(f"store://{host}:{port}", segment_nodes=3, workload="e2e")
        sink.attach(ProvenanceTracker())  # mints the remote run up front
        run_id = sink.run_id

        # A live-tail watcher streams the seed page's lineage as it grows.
        updates = []

        def stream():
            watcher = StoreClient(host, port, timeout=15.0)
            for update in watcher.watch(seed_page, run=run_id, interval=0.01, timeout=30.0):
                updates.append(update)

        watcher_thread = threading.Thread(target=stream, daemon=True)
        watcher_thread.start()
        # A follow-mode reader samples progress between epochs.
        follow = StoreClient(host, port, timeout=10.0, refresh_mode="follow")
        observed = []

        class SamplingSink:
            def __init__(self, inner):
                self.inner = inner

            def __getattr__(self, name):
                return getattr(self.inner, name)

            def subcomputation_published(self, node, edges):
                self.inner.subcomputation_published(node, edges)
                observed.append(follow.result("watch", pages=seed_page, run=run_id))

        publish_run(SamplingSink(sink), cpg, pause_every=3, pause=0.02)
        observed.append(follow.result("watch", pages=seed_page, run=run_id))
        watcher_thread.join(timeout=30)
        assert not watcher_thread.is_alive()

        # The follow reader saw the run grow: node counts are
        # non-decreasing and more than one distinct value appeared.
        counts = [obs["progress"]["nodes"] for obs in observed]
        assert counts == sorted(counts)
        assert len(set(counts)) > 1
        assert counts[-1] == len(cpg)
        # The watch stream ended because the run completed, and its final
        # observation is the full in-memory lineage.
        assert updates, "the watch stream never emitted"
        assert updates[-1]["done"] is True
        assert "timed_out" not in updates[-1]
        assert updates[-1]["progress"]["status"] == "complete"
        assert set(updates[-1]["nodes"]) == expected_lineage
        lineage_sizes = [len(update["nodes"]) for update in updates]
        assert lineage_sizes == sorted(lineage_sizes)

        # Cold reopen: the remote store answers exactly like the local
        # reference run and the in-memory graph.
        remote = ProvenanceStore.open(store_dir)
        reference = ProvenanceStore.open(reference_dir)
        assert remote.manifest.node_count == reference.manifest.node_count
        assert canonical_edges(remote.load_cpg(run=run_id)) == canonical_edges(
            reference.load_cpg(run=local_sink.run_id)
        )
        origin = [
            n for n in cpg.nodes() if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
        engine = StoreQueryEngine(remote)
        assert engine.backward_slice(origin, run=run_id) == backward_slice(cpg, origin)
        assert engine.lineage_of_pages(seed_page, run=run_id) == expected_lineage
        taint = engine.propagate_taint(seed_page, run=run_id)
        expected_taint = propagate_taint(cpg, seed_page)
        assert taint.tainted_nodes == expected_taint.tainted_nodes
        assert taint.tainted_pages == expected_taint.tainted_pages
        # Epoch accounting matches the local sink's.
        remote_meta = remote.manifest.run_info(run_id).meta
        reference_meta = reference.manifest.run_info(local_sink.run_id).meta
        assert remote_meta["epochs"] == reference_meta["epochs"]
        assert server.server_stats()["epochs_ingested"] > 0
        assert server.server_stats()["active_ingests"] == 0

    def test_run_with_provenance_streams_over_store_url(self, writable, tmp_path):
        store_dir, _, host, port = writable
        reference = run_with_provenance(
            "histogram", num_threads=2, size="small", store_path=str(tmp_path / "reference")
        )
        traced = run_with_provenance(
            "histogram", num_threads=2, size="small", store_url=f"store://{host}:{port}"
        )
        assert traced.store is None  # the run never touched the directory
        assert traced.store_run_id == 1
        remote = ProvenanceStore.open(store_dir)
        info = remote.manifest.run_info(traced.store_run_id)
        assert info.status == "complete"
        assert info.workload == "histogram"
        assert info.nodes == len(traced.cpg)
        # Identical deterministic runs: the remote store's answers equal
        # the locally ingested reference store's.
        page = sorted(reference.cpg.subcomputation(reference.cpg.input_node).write_set)[0]
        remote_engine = StoreQueryEngine(remote)
        reference_engine = StoreQueryEngine(reference.store)
        assert remote_engine.lineage_of_pages([page], run=1) == reference_engine.lineage_of_pages(
            [page], run=reference.store_run_id
        )

    def test_store_and_store_url_are_mutually_exclusive(self, tmp_path):
        from repro.inspector.session import InspectorSession

        with pytest.raises(ValueError, match="mutually exclusive"):
            InspectorSession(store=str(tmp_path / "s"), store_url="localhost:1")


class TestWatchPolling:
    def test_idle_watch_skips_the_lineage_query_between_changes(self, tmp_path):
        # An idle watch (run in progress, writer quiet) polls
        # manifest-only progress per tick; the full lineage query runs
        # only when the progress tuple moves or the deadline forces the
        # final observation.  Here nothing changes, so across ~25 ticks
        # exactly two queries are served: the initial observation and
        # the timed-out final one.
        cpg = build_cpg(threads=2, steps=2)
        store_dir = str(tmp_path / "store")
        store = ProvenanceStore.create(store_dir)
        run_id = store.new_run(workload="idle")
        nodes = [n for n in cpg.topological_order() if n[0] >= 0]
        store.append_segment([cpg.subcomputation(n) for n in nodes], [], run=run_id)
        store.flush()  # the run stays "running": the watch never sees done
        pages = sorted(cpg.subcomputation(nodes[-1]).write_set)[:1]
        server = StoreServer(store_dir)
        server.start()  # close() joins the serve loop, so it must run
        try:
            updates = list(
                server.watch_responses(
                    {
                        "op": "watch",
                        "pages": pages,
                        "run": run_id,
                        "stream": True,
                        "interval": 0.01,
                        "timeout": 0.25,
                    }
                )
            )
        finally:
            server.close()
        assert [update["ok"] for update in updates] == [True, True]
        assert updates[0]["result"]["done"] is False
        assert updates[-1]["result"]["done"] and updates[-1]["result"]["timed_out"]
        assert server.queries_served == 2


class TestFollowHammer:
    def test_one_remote_writer_many_follow_readers(self, tmp_path):
        cpg = build_cpg()
        store_dir = str(tmp_path / "store")
        store = ProvenanceStore.create(store_dir)
        store.ingest(cpg, segment_nodes=3, workload="base")
        server = StoreServer(store_dir, parallelism=4, writable=True)
        host, port = server.start()
        try:
            origin = [
                n for n in cpg.nodes() if n[0] >= 0 and cpg.subcomputation(n).write_set
            ][-1]
            pages = sorted(cpg.subcomputation(origin).write_set)[:1]
            expected_slice = backward_slice(cpg, origin)
            expected_lineage = lineage_of_pages(cpg, pages)
            errors = []
            growth = []
            stop = threading.Event()

            def reader(tid: int) -> None:
                client = StoreClient(host, port, timeout=10.0, refresh_mode="follow")
                try:
                    while not stop.is_set():
                        # The committed run answers identically throughout.
                        assert client.backward_slice(origin, run=1) == expected_slice
                        assert client.lineage(pages, run=1) == expected_lineage
                        runs = client.runs()
                        if len(runs) > 1:
                            growth.append(runs[-1]["nodes"])
                except Exception as exc:  # noqa: BLE001 - reported via main thread
                    errors.append((tid, exc))

            threads = [threading.Thread(target=reader, args=(tid,)) for tid in range(4)]
            for thread in threads:
                thread.start()
            sink = RemoteStoreSink(f"{host}:{port}", segment_nodes=3, workload="remote")
            publish_run(sink, cpg, pause_every=3, pause=0.01)
            time.sleep(0.05)  # let the readers observe the committed run
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, f"follow readers failed: {errors[:3]}"
            # The readers watched the remote run grow mid-ingest.
            assert growth and growth[-1] == len(cpg)
            # The freshly committed run answers like the base run.
            follow = StoreClient(host, port, timeout=10.0, refresh_mode="follow")
            assert follow.backward_slice(origin, run=2) == expected_slice
            assert follow.lineage(pages, run=2) == expected_lineage
            stats = server.server_stats()
            assert stats["follow_refreshes"] > 0
            assert stats["epochs_ingested"] > 0
            assert stats["writable"] is True
            # The shared cache budget held with a writer in the mix.
            assert server.cache.total_bytes <= server.cache.max_bytes
            assert server.cache.peak_bytes <= server.cache.max_bytes
        finally:
            server.close()

"""Tests for the store's self-healing layer (:mod:`repro.store.integrity`).

Covers the whole damage lifecycle: codec-level frame checksums, the
per-file checksum columns, structural fsck (including the orphan leak a
crashed ``compact()`` leaves behind), deep scrub with quarantine and
un-quarantine, degraded queries that skip quarantined segments instead of
failing, the server's stable error ``code`` field, the scrub-vs-warm-
reader cache contract, and the cluster anti-entropy e2e: a bit-flipped
replica is detected, quarantined, healed by ``cluster repair`` through a
chaos proxy failover, and passes fsck afterwards.
"""

import json
import os
import shutil
import threading
import zlib

import pytest

from helpers.clusters import build_multirun_store, random_cpg
from helpers.faults import ChaosProxy, delete_file, flip_bytes, truncate_file

from repro.errors import CorruptSegmentError, StoreError, StoreReadOnlyError
from repro.store import (
    ClusterManifest,
    ClusterService,
    Endpoint,
    ProvenanceStore,
    ReadScope,
    ShardInfo,
    StoreCluster,
    StoreQueryEngine,
    StoreServer,
    scrub,
    verify_store,
)
from repro.store.__main__ import main as store_cli
from repro.store.codecs import CRC_FRAME_FLAG
from repro.store.format import (
    INDEX_DIR,
    MANIFEST_NAME,
    PAGES_RUNS_FILE,
    SEGMENT_LOG_NAME,
    SEGMENT_MAGIC_PREFIX,
    SEGMENTS_DIR,
    file_size_crc,
)
from repro.store.segment import (
    FRAME_UNVERIFIED,
    FRAME_VERIFIED,
    decode_segment,
    encode_segment,
    verify_frame,
)

ALL_PAGES = list(range(8))


def build_store(path, seeds=(11, 23)):
    store, runs = build_multirun_store(str(path), list(seeds))
    store.close()
    return runs


def segment_path(store_dir, info):
    return os.path.join(str(store_dir), SEGMENTS_DIR, info.file_name)


def first_segment_file(store_dir):
    with ProvenanceStore.open(str(store_dir)) as store:
        info = store.manifest.segments[0]
        return info.segment_id, segment_path(store_dir, info)


def strip_crc_frame(framed: bytes) -> bytes:
    """Rewrite a CRC-bearing frame as its pre-integrity legacy form."""
    pos = len(SEGMENT_MAGIC_PREFIX)
    frame_byte = framed[pos]
    assert frame_byte & CRC_FRAME_FLAG
    header_end = pos + 1 + 8
    return (
        framed[:pos]
        + bytes((frame_byte & ~CRC_FRAME_FLAG,))
        + framed[pos + 1 : header_end]
        + framed[header_end + 4 :]  # drop the 4-byte CRC
    )


# ---------------------------------------------------------------------- #
# Codec-level frame checksums
# ---------------------------------------------------------------------- #


class TestFrameChecksums:
    @staticmethod
    def encode_example():
        cpg = random_cpg(3)
        nodes = [cpg.subcomputation(node_id) for node_id in cpg.nodes()]
        framed, _ = encode_segment(nodes, [])
        return framed

    def test_new_frames_carry_and_verify_a_crc(self):
        framed = self.encode_example()
        assert verify_frame(framed) == FRAME_VERIFIED
        assert decode_segment(framed).nodes  # decode verifies, then parses

    def test_bit_rot_in_the_body_is_detected(self):
        framed = self.encode_example()
        rotted = bytearray(framed)
        rotted[-1] ^= 0xFF
        with pytest.raises(StoreError, match="checksum mismatch"):
            verify_frame(bytes(rotted))
        with pytest.raises(StoreError, match="checksum mismatch"):
            decode_segment(bytes(rotted))

    def test_legacy_frames_read_back_as_unverified(self):
        framed = self.encode_example()
        legacy = strip_crc_frame(framed)
        assert verify_frame(legacy) == FRAME_UNVERIFIED
        assert decode_segment(legacy).nodes == decode_segment(framed).nodes


# ---------------------------------------------------------------------- #
# Per-file checksum columns
# ---------------------------------------------------------------------- #


class TestChecksumColumns:
    def test_manifest_records_size_and_crc_for_every_file(self, tmp_path):
        build_store(tmp_path / "store")
        with ProvenanceStore.open(str(tmp_path / "store")) as store:
            assert store.manifest.segments
            for info in store.manifest.segments:
                assert info.crc is not None
                assert file_size_crc(segment_path(tmp_path / "store", info)) == [
                    info.stored_bytes,
                    info.crc,
                ]
            for run in store.manifest.runs:
                assert run.index_checksums  # at least the base is covered
                run_dir = store._run_index_dir(run.run_id)
                for name, pair in run.index_checksums.items():
                    assert file_size_crc(os.path.join(run_dir, name)) == pair
            recorded = store.manifest.pages_runs_checksum
            assert recorded is not None
            summary = os.path.join(str(tmp_path / "store"), INDEX_DIR, PAGES_RUNS_FILE)
            assert file_size_crc(summary) == recorded

    def test_compact_backfills_missing_segment_checksums(self, tmp_path):
        build_store(tmp_path / "store", seeds=(5, 6, 7))
        # Simulate a store whose manifest predates the checksum column.
        with ProvenanceStore.open(str(tmp_path / "store")) as store:
            for info in store.manifest.segments:
                info.crc = None
            store.flush(checkpoint=True)
        with ProvenanceStore.open(str(tmp_path / "store")) as store:
            assert all(info.crc is None for info in store.manifest.segments)
            store.compact(segment_nodes=64)
            assert store.manifest.segments
            assert all(info.crc is not None for info in store.manifest.segments)


# ---------------------------------------------------------------------- #
# fsck
# ---------------------------------------------------------------------- #


class TestFsck:
    def test_clean_store_passes(self, tmp_path):
        build_store(tmp_path / "store")
        report = verify_store(str(tmp_path / "store"))
        assert report["ok"]
        assert report["problems"] == []
        assert report["checked"]["segments"] > 0

    def test_missing_and_truncated_segments_are_reported(self, tmp_path):
        build_store(tmp_path / "store")
        with ProvenanceStore.open(str(tmp_path / "store")) as store:
            missing = segment_path(tmp_path / "store", store.manifest.segments[0])
            torn = segment_path(tmp_path / "store", store.manifest.segments[1])
        delete_file(missing)
        truncate_file(torn, drop_bytes=3)
        report = verify_store(str(tmp_path / "store"))
        assert not report["ok"]
        kinds = {problem["kind"] for problem in report["problems"]}
        assert {"segment_missing", "segment_size_mismatch"} <= kinds

    def test_missing_index_file_is_a_torn_delta(self, tmp_path):
        build_store(tmp_path / "store")
        with ProvenanceStore.open(str(tmp_path / "store")) as store:
            run = store.manifest.runs[0]
            run_dir = store._run_index_dir(run.run_id)
            name = next(iter(run.index_checksums))
        delete_file(os.path.join(run_dir, name))
        report = verify_store(str(tmp_path / "store"))
        assert not report["ok"]
        assert any(p["kind"] == "index_file_missing" for p in report["problems"])

    def test_torn_log_tail_is_a_warning_not_damage(self, tmp_path):
        build_store(tmp_path / "store")
        log = os.path.join(str(tmp_path / "store"), SEGMENT_LOG_NAME)
        with open(log, "ab") as handle:
            handle.write(b"\x00garbage-from-a-crashed-append")
        report = verify_store(str(tmp_path / "store"))
        assert report["ok"]
        assert any(w["kind"] == "log_torn_tail" for w in report["warnings"])
        assert report["segment_log"]["torn_bytes"] > 0

    def test_crashed_compact_leaks_orphans_fsck_repair_reclaims(self, tmp_path, monkeypatch):
        runs = build_store(tmp_path / "store", seeds=(5, 6, 7))
        store_dir = str(tmp_path / "store")
        with ProvenanceStore.open(store_dir) as store:
            baseline = StoreQueryEngine(store).lineage_of_pages(ALL_PAGES, run=runs[0])
            # Crash compact() after the manifest committed the new
            # generation but before the superseded files were deleted --
            # the orphan-leak window.
            monkeypatch.setattr(
                store,
                "_delete_segments",
                lambda ids: (_ for _ in ()).throw(RuntimeError("crash before delete")),
            )
            with pytest.raises(RuntimeError):
                store.compact(segment_nodes=64)
        report = verify_store(store_dir)
        assert not report["ok"]
        assert report["orphans"]
        assert any(p["kind"] == "orphan_file" for p in report["problems"])

        repaired = verify_store(store_dir, repair=True)
        assert repaired["repaired"] == report["orphans"]
        after = verify_store(store_dir)
        assert after["ok"] and after["orphans"] == []
        with ProvenanceStore.open(store_dir) as store:
            assert (
                StoreQueryEngine(store).lineage_of_pages(ALL_PAGES, run=runs[0])
                == baseline
            )

    def test_cli_exit_codes(self, tmp_path, capsys):
        build_store(tmp_path / "store")
        store_dir = str(tmp_path / "store")
        assert store_cli(["fsck", store_dir]) == 0
        capsys.readouterr()  # drain the human-readable report
        _, seg = first_segment_file(tmp_path / "store")
        truncate_file(seg, drop_bytes=1)
        assert store_cli(["fsck", store_dir, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert any(p["kind"] == "segment_size_mismatch" for p in report["problems"])


# ---------------------------------------------------------------------- #
# scrub + quarantine + degraded reads
# ---------------------------------------------------------------------- #


class TestScrubAndQuarantine:
    def test_clean_scrub_verifies_everything(self, tmp_path):
        build_store(tmp_path / "store")
        with ProvenanceStore.open(str(tmp_path / "store")) as store:
            report = scrub(store, throttle_mb_per_s=200.0)
        assert report["ok"]
        assert report["segments"]["damaged"] == 0
        assert report["segments"]["unverified"] == 0
        assert report["segments"]["verified"] > 0
        assert report["index_files"]["verified"] > 0
        assert report["bytes_verified"] > 0

    def test_bit_flip_is_quarantined_and_unquarantined_after_restore(self, tmp_path):
        build_store(tmp_path / "store")
        store_dir = str(tmp_path / "store")
        segment_id, seg = first_segment_file(tmp_path / "store")
        original = flip_bytes(seg, -2)
        with ProvenanceStore.open(store_dir) as store:
            report = scrub(store)
            assert not report["ok"]
            assert report["quarantined"] == [segment_id]
            assert store.is_quarantined(segment_id)
        # The mark is durable: a fresh open still refuses the segment.
        with ProvenanceStore.open(store_dir) as store:
            assert store.is_quarantined(segment_id)
            with pytest.raises(CorruptSegmentError) as exc_info:
                store.segment(segment_id)
            assert exc_info.value.code == "quarantined"
        fsck = verify_store(store_dir)
        assert not fsck["ok"]
        assert str(segment_id) in fsck["quarantined"]
        # Repair in place (restore the original bytes): scrub lifts the mark.
        with open(seg, "r+b") as handle:
            handle.seek(os.path.getsize(seg) - 2)
            handle.write(original)
        with ProvenanceStore.open(store_dir) as store:
            healed = scrub(store)
            assert healed["ok"]
            assert healed["unquarantined"] == [segment_id]
        assert verify_store(store_dir)["ok"]

    def test_scrub_without_quarantine_only_reports(self, tmp_path):
        build_store(tmp_path / "store")
        store_dir = str(tmp_path / "store")
        _, seg = first_segment_file(tmp_path / "store")
        flip_bytes(seg, -2)
        with ProvenanceStore.open(store_dir) as store:
            report = scrub(store, quarantine=False)
            assert not report["ok"]
            assert report["quarantined"] == []
        with ProvenanceStore.open(store_dir) as store:
            assert store.quarantined_segments() == {}

    def test_legacy_manifest_scrubs_unverified_without_upgrading(self, tmp_path):
        build_store(tmp_path / "store")
        store_dir = str(tmp_path / "store")
        # Strip the integrity columns: what a store written by the
        # previous release looks like after opening under this one.
        manifest_path = os.path.join(store_dir, MANIFEST_NAME)
        with open(manifest_path, encoding="utf-8") as handle:
            data = json.load(handle)
        for entry in data["segments"]:
            entry.pop("crc", None)
        for entry in data["runs"]:
            entry.pop("index_checksums", None)
        data.pop("pages_runs_checksum", None)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        before = os.path.getsize(manifest_path)
        with ProvenanceStore.open(store_dir) as store:
            report = scrub(store)
        # Frames still carry their CRC, so segments verify; the index
        # files have no recorded checksum and count as unverified.
        assert report["ok"]
        assert report["segments"]["damaged"] == 0
        assert report["index_files"]["unverified"] > 0
        # A clean scrub writes nothing -- it must not upgrade the store.
        assert os.path.getsize(manifest_path) == before

    def test_upgraded_legacy_store_regains_full_coverage(self, tmp_path):
        """A pre-integrity store queries unchanged; one compact() upgrades it.

        Rewrites every segment as a legacy (CRC-less) frame and strips
        the manifest's checksum columns -- what a store written before
        this release looks like -- then checks the documented ladder:
        still opens and queries, scrubs clean but `unverified`, and a
        single compact() backfills both layers so the next bit flip is
        caught.
        """
        runs = build_store(tmp_path / "store", seeds=(71,))
        store_dir = str(tmp_path / "store")
        with ProvenanceStore.open(store_dir) as store:
            baseline = StoreQueryEngine(store).lineage_of_pages(ALL_PAGES, run=runs[0])
            seg_paths = [
                segment_path(tmp_path / "store", info)
                for info in store.manifest.segments
            ]
        for seg in seg_paths:
            with open(seg, "rb") as handle:
                framed = handle.read()
            with open(seg, "wb") as handle:
                handle.write(strip_crc_frame(framed))
        manifest_path = os.path.join(store_dir, MANIFEST_NAME)
        with open(manifest_path, encoding="utf-8") as handle:
            data = json.load(handle)
        for entry in data["segments"]:
            entry.pop("crc", None)
            entry["stored_bytes"] -= 4  # the dropped CRC field
        for entry in data["runs"]:
            entry.pop("index_checksums", None)
        data.pop("pages_runs_checksum", None)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)

        assert verify_store(store_dir)["ok"]
        with ProvenanceStore.open(store_dir) as store:
            assert (
                StoreQueryEngine(store).lineage_of_pages(ALL_PAGES, run=runs[0])
                == baseline
            )
            report = scrub(store)
            assert report["ok"]
            assert report["segments"]["unverified"] == len(seg_paths)
            assert report["segments"]["verified"] == 0
        with ProvenanceStore.open(store_dir) as store:
            store.compact(segment_nodes=64)
        with ProvenanceStore.open(store_dir) as store:
            report = scrub(store)
            assert report["ok"]
            assert report["segments"]["unverified"] == 0
            assert report["segments"]["verified"] > 0
            assert (
                StoreQueryEngine(store).lineage_of_pages(ALL_PAGES, run=runs[0])
                == baseline
            )
        # Coverage is back: damage is detectable again.
        _, seg = first_segment_file(tmp_path / "store")
        flip_bytes(seg, -2)
        with ProvenanceStore.open(store_dir) as store:
            assert not scrub(store, quarantine=False)["ok"]

    def test_corruption_sweep_every_file_class_is_caught(self, tmp_path):
        """Flip one byte in each class of store file; scrub flags each."""
        build_store(tmp_path / "store", seeds=(9,))
        store_dir = str(tmp_path / "store")
        targets = []
        with ProvenanceStore.open(store_dir) as store:
            targets.append(segment_path(tmp_path / "store", store.manifest.segments[0]))
            run = store.manifest.runs[0]
            run_dir = store._run_index_dir(run.run_id)
            targets.extend(os.path.join(run_dir, name) for name in run.index_checksums)
            targets.append(os.path.join(store_dir, INDEX_DIR, PAGES_RUNS_FILE))
        for target in targets:
            original = flip_bytes(target, len(open(target, "rb").read()) // 2)
            with ProvenanceStore.open(store_dir) as store:
                report = scrub(store, quarantine=False)
            assert not report["ok"], f"scrub missed damage in {target}"
            assert len(report["damage"]) == 1
            offset = os.path.getsize(target) // 2
            with open(target, "r+b") as handle:
                handle.seek(offset)
                handle.write(original)
        with ProvenanceStore.open(store_dir) as store:
            assert scrub(store)["ok"]

    def test_queries_degrade_instead_of_failing(self, tmp_path):
        runs = build_store(tmp_path / "store", seeds=(11,))
        store_dir = str(tmp_path / "store")
        with ProvenanceStore.open(store_dir) as store:
            engine = StoreQueryEngine(store)
            baseline = engine.lineage_of_pages(ALL_PAGES, run=runs[0])
            indexes = store.indexes_for(runs[0])
            # Pick a segment the lineage walk actually reads: the first
            # backward-expansion hop of some page writer.
            hot = next(
                segment_id
                for page in ALL_PAGES
                for writer in indexes.writers_of_page(page)
                for segment_id in indexes.in_segments(writer)
            )
            victim_nodes = list(store.segment(hot).nodes)
            info = store.manifest.segment_info(hot)
        flip_bytes(segment_path(tmp_path / "store", info), -2)
        with ProvenanceStore.open(store_dir) as store:
            scope = ReadScope()
            engine = StoreQueryEngine(store, scope=scope)
            degraded = engine.lineage_of_pages(ALL_PAGES, run=runs[0])
            assert degraded <= baseline  # skipped, never wrong or raised
            assert scope.degraded
            assert hot in scope.quarantined_segments
            assert scope.to_dict()["quarantined_segments"] == sorted(
                scope.quarantined_segments
            )
            # Point lookups have no partial answer: typed error instead.
            with pytest.raises(CorruptSegmentError) as exc_info:
                engine.subcomputation(victim_nodes[0], run=runs[0])
            assert exc_info.value.code in ("corrupt_segment", "quarantined")
            assert exc_info.value.segment_id == hot

    def test_scrub_cli_quarantines_and_exits_nonzero(self, tmp_path, capsys):
        build_store(tmp_path / "store")
        store_dir = str(tmp_path / "store")
        assert store_cli(["scrub", store_dir]) == 0
        capsys.readouterr()  # drain the human-readable report
        segment_id, seg = first_segment_file(tmp_path / "store")
        flip_bytes(seg, -2)
        assert store_cli(["scrub", store_dir, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["quarantined"] == [segment_id]
        with ProvenanceStore.open(store_dir) as store:
            assert store.is_quarantined(segment_id)


# ---------------------------------------------------------------------- #
# Scrub next to warm readers
# ---------------------------------------------------------------------- #


class TestScrubVersusWarmReaders:
    def test_scrub_leaves_the_warm_cache_alone(self, tmp_path):
        build_store(tmp_path / "store", seeds=(21, 22, 23))
        store_dir = str(tmp_path / "store")
        server = StoreServer(store_dir, parallelism=2)
        try:
            request = {"op": "lineage_across_runs", "pages": ALL_PAGES}
            baseline = server.handle_request(request)
            assert baseline["ok"]
            server.handle_request(request)  # fully warm now
            misses_before = server.cache.stats.misses
            errors = []
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    response = server.handle_request(request)
                    if not response.get("ok") or response["result"] != baseline["result"]:
                        errors.append(response)
                        return

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            with ProvenanceStore.open(store_dir) as handle:
                for _ in range(3):
                    report = scrub(handle, throttle_mb_per_s=50.0)
                    assert report["ok"]
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            assert not errors
            # Scrub reads the files directly, never through the decoded-
            # segment cache: the warm working set took zero new misses.
            assert server.cache.stats.misses == misses_before
        finally:
            server.close()


# ---------------------------------------------------------------------- #
# Server error codes
# ---------------------------------------------------------------------- #


class TestServerErrorCodes:
    def test_read_only_ingest_reports_its_code(self, tmp_path):
        build_store(tmp_path / "store")
        server = StoreServer(str(tmp_path / "store"))
        try:
            response = server.handle_request({"op": "begin_run"})
            assert not response["ok"]
            assert response["code"] == "read_only"
        finally:
            server.close()

    def test_bad_requests_report_bad_request(self, tmp_path):
        build_store(tmp_path / "store")
        server = StoreServer(str(tmp_path / "store"))
        try:
            for request in (
                {"op": "no-such-op"},
                {"op": "slice"},  # missing params
                {"not": "a request"},
            ):
                response = server.handle_request(request)
                assert not response["ok"]
                assert response["code"] == "bad_request"
        finally:
            server.close()

    def test_corrupt_segment_errors_carry_their_code(self, tmp_path):
        assert CorruptSegmentError("x", segment_id=1).code == "corrupt_segment"
        assert CorruptSegmentError("x", segment_id=1, quarantined=True).code == "quarantined"
        assert StoreReadOnlyError("x").code == "read_only"
        assert StoreError("x").code == "bad_request"

    def test_stats_surface_quarantine_state(self, tmp_path):
        build_store(tmp_path / "store")
        store_dir = str(tmp_path / "store")
        segment_id, seg = first_segment_file(tmp_path / "store")
        flip_bytes(seg, -2)
        with ProvenanceStore.open(store_dir) as store:
            scrub(store)
        server = StoreServer(store_dir)
        try:
            stats = server.handle_request({"op": "stats"})["result"]
            assert stats["degraded"]
            assert stats["quarantined_segments"] == [segment_id]
        finally:
            server.close()


# ---------------------------------------------------------------------- #
# Cluster anti-entropy repair (the acceptance e2e)
# ---------------------------------------------------------------------- #


class TestClusterRepair:
    def test_kill_corrupt_repair_requery(self, tmp_path):
        """Bit rot on a replica: detected, quarantined, healed, re-verified."""
        runs = build_store(tmp_path / "primary", seeds=(31, 32))
        primary_dir = str(tmp_path / "primary")
        replica_dir = str(tmp_path / "replica")
        shutil.copytree(primary_dir, replica_dir)

        primary = StoreServer(primary_dir)
        replica = StoreServer(replica_dir)
        primary_addr = "%s:%d" % primary.start()
        replica_addr = "%s:%d" % replica.start()
        proxy = ChaosProxy(target=primary.address, mode="pass")
        try:
            manifest = ClusterManifest(
                shards=[
                    ShardInfo(
                        "shard-0",
                        Endpoint(address="%s:%d" % proxy.address, path=primary_dir),
                        replicas=[Endpoint(address=replica_addr, path=replica_dir)],
                    )
                ],
                policy="run-hash",
            )
            cluster = StoreCluster(
                manifest, client_options={"timeout": 5.0, "retries": 0}
            )
            baseline = {run: cluster.lineage(ALL_PAGES, run=run) for run in runs}

            # Bit-rot one replica segment, then scrub the replica: the
            # damage is quarantined durably without touching the primary.
            segment_id, seg = first_segment_file(tmp_path / "replica")
            flip_bytes(seg, -2)
            with ProvenanceStore.open(replica_dir) as store:
                report = scrub(store)
            assert report["quarantined"] == [segment_id]

            # Kill the primary (proxy goes dark): queries fail over to the
            # damaged replica and still answer -- degraded, never failing.
            replica.refresh()  # pick up the quarantine marks
            proxy.mode = "drop"
            for run in runs:
                degraded = cluster.lineage(ALL_PAGES, run=run)
                assert degraded <= baseline[run]
            fanout = cluster.last_fanout
            assert fanout["shards"][-1]["address"] == replica_addr

            # Primary back up: anti-entropy streams exactly the damaged
            # file (plus log + manifest) and refreshes the live replica.
            proxy.mode = "pass"
            repair_report = cluster.repair("shard-0")
            shard_report = repair_report["shards"][0]
            fetched = shard_report["replicas"][0]["fetched"]
            assert os.path.join(SEGMENTS_DIR, os.path.basename(seg)).replace(
                os.sep, "/"
            ) in fetched
            assert SEGMENT_LOG_NAME in fetched and MANIFEST_NAME in fetched
            assert shard_report["replicas"][0]["refreshed"]
            assert cluster.fanout_stats()["repairs"]["runs"] == 1
            assert cluster.fanout_stats()["repairs"]["files_fetched"] >= 3

            # The healed replica answers in full and passes fsck + scrub.
            proxy.mode = "drop"
            for run in runs:
                assert cluster.lineage(ALL_PAGES, run=run) == baseline[run]
            assert verify_store(replica_dir)["ok"]
            with ProvenanceStore.open(replica_dir) as store:
                assert scrub(store)["ok"]
                assert store.quarantined_segments() == {}
        finally:
            proxy.close()
            primary.close()
            replica.close()

    def test_repair_fetches_nothing_when_replicas_match(self, tmp_path):
        build_store(tmp_path / "primary", seeds=(41,))
        primary_dir = str(tmp_path / "primary")
        replica_dir = str(tmp_path / "replica")
        shutil.copytree(primary_dir, replica_dir)
        primary = StoreServer(primary_dir)
        address = "%s:%d" % primary.start()
        try:
            manifest = ClusterManifest(
                shards=[
                    ShardInfo(
                        "shard-0",
                        Endpoint(address=address, path=primary_dir),
                        replicas=[Endpoint(address="", path=replica_dir)],
                    )
                ],
                policy="run-hash",
            )
            cluster = StoreCluster(manifest)
            report = cluster.repair()
            replica_report = report["shards"][0]["replicas"][0]
            # Only the metadata pair is refreshed; every data file matched.
            assert replica_report["fetched"] == [SEGMENT_LOG_NAME, MANIFEST_NAME]
            assert replica_report["files_matched"] > 0
            assert verify_store(replica_dir)["ok"]
        finally:
            primary.close()

    def test_repair_cli(self, tmp_path, capsys):
        build_store(tmp_path / "primary", seeds=(51,))
        primary_dir = str(tmp_path / "primary")
        replica_dir = str(tmp_path / "replica")
        shutil.copytree(primary_dir, replica_dir)
        _, seg = first_segment_file(tmp_path / "replica")
        flip_bytes(seg, -2)
        primary = StoreServer(primary_dir)
        address = "%s:%d" % primary.start()
        try:
            manifest = ClusterManifest(
                shards=[
                    ShardInfo(
                        "shard-0",
                        Endpoint(address=address, path=primary_dir),
                        replicas=[Endpoint(address="", path=replica_dir)],
                    )
                ],
                policy="run-hash",
            )
            cluster_json = str(tmp_path / "cluster.json")
            manifest.save(cluster_json)
            assert store_cli(["cluster", "repair", cluster_json, "--json"]) == 0
            report = json.loads(capsys.readouterr().out)
            assert report["files_fetched"] >= 3
            assert verify_store(replica_dir)["ok"]
        finally:
            primary.close()

    def test_fetch_file_rejects_paths_outside_the_store(self, tmp_path):
        build_store(tmp_path / "store")
        server = StoreServer(str(tmp_path / "store"))
        try:
            for bad in ("../secrets", "segments/../MANIFEST.json.bak", "/etc/passwd", "foo"):
                response = server.handle_request({"op": "fetch_file", "path": bad})
                assert not response["ok"]
                assert "does not name a store file" in response["error"]
            digest = server.handle_request({"op": "manifest_digest"})
            assert digest["ok"]
            some_file = sorted(digest["result"]["files"])[0]
            fetched = server.handle_request({"op": "fetch_file", "path": some_file})
            assert fetched["ok"]
            data = fetched["result"]
            assert zlib.crc32(
                __import__("base64").b64decode(data["data"])
            ) & 0xFFFFFFFF == data["crc"]
        finally:
            server.close()

    def test_manifest_digest_omits_quarantined_segments(self, tmp_path):
        build_store(tmp_path / "store")
        store_dir = str(tmp_path / "store")
        segment_id, seg = first_segment_file(tmp_path / "store")
        flip_bytes(seg, -2)
        with ProvenanceStore.open(store_dir) as store:
            scrub(store)
        server = StoreServer(store_dir)
        try:
            digest = server.handle_request({"op": "manifest_digest"})["result"]
            rel = "%s/%s" % (SEGMENTS_DIR, os.path.basename(seg))
            assert rel not in digest["files"]
            assert str(segment_id) in digest["quarantined"]
        finally:
            server.close()

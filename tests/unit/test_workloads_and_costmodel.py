"""Unit tests for workload datasets, the cost model, stats, and the pthreads veneer."""

import pytest

from repro.inspector.costmodel import CostModel, CostParameters
from repro.inspector.stats import RunStats
from repro.threads.backend import DirectBackend
from repro.threads.program import ProgramAPI, branch_site
from repro.threads.pthreads import (
    pthread_barrier_init,
    pthread_barrier_wait,
    pthread_create,
    pthread_join,
    pthread_mutex_init,
    pthread_mutex_lock,
    pthread_mutex_unlock,
)
from repro.threads.runtime import SimRuntime
from repro.workloads.base import chunk_ranges
from repro.workloads.registry import (
    INPUT_SCALING_WORKLOADS,
    OUTLIER_WORKLOADS,
    all_workloads,
    get_workload,
    list_workloads,
)


class TestWorkloadRegistry:
    def test_twelve_workloads_registered(self):
        assert len(list_workloads()) == 12

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("does-not-exist")

    def test_outliers_and_scaling_sets_are_registered_workloads(self):
        names = set(list_workloads())
        assert set(OUTLIER_WORKLOADS) <= names
        assert set(INPUT_SCALING_WORKLOADS) <= names

    def test_every_workload_has_paper_reference(self):
        for workload in all_workloads():
            assert workload.paper is not None
            assert workload.paper.page_faults > 0
            assert workload.paper.compression_ratio > 0
            assert workload.suite in ("phoenix", "parsec")

    def test_overhead_bands_match_paper(self):
        for workload in all_workloads():
            if workload.name in OUTLIER_WORKLOADS:
                assert workload.paper.overhead_band == "high"
            elif workload.name == "linear_regression":
                assert workload.paper.overhead_band == "below_native"
            else:
                assert workload.paper.overhead_band == "low"


class TestDatasets:
    @pytest.mark.parametrize("name", list_workloads())
    def test_datasets_deterministic_and_sized(self, name):
        workload = get_workload(name)
        first = workload.generate_dataset("small", seed=3)
        second = workload.generate_dataset("small", seed=3)
        assert first.payload == second.payload
        large = workload.generate_dataset("large", seed=3)
        assert large.size_bytes > first.size_bytes

    def test_different_seeds_differ(self):
        workload = get_workload("canneal")
        assert (
            workload.generate_dataset("small", seed=1).payload
            != workload.generate_dataset("small", seed=2).payload
        )

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            get_workload("histogram").generate_dataset("gigantic")

    def test_verify_rejects_wrong_results(self):
        workload = get_workload("histogram")
        dataset = workload.generate_dataset("small")
        with pytest.raises(AssertionError):
            workload.verify([0] * 256, dataset)


class TestChunkRanges:
    def test_covers_everything_without_overlap(self):
        ranges = chunk_ranges(100, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start
        assert sum(end - start for start, end in ranges) == 100

    def test_more_chunks_than_items(self):
        ranges = chunk_ranges(3, 8)
        assert len(ranges) == 8
        assert sum(end - start for start, end in ranges) == 3

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunk_ranges(10, 0)


def make_stats(mode="inspector", **overrides):
    base = dict(
        workload="synthetic",
        mode=mode,
        threads=4,
        instructions=1_000_000,
        per_thread_instructions={0: 250_000, 1: 250_000, 2: 250_000, 3: 250_000},
        sync_ops=100,
        process_creations=5,
        page_faults=200,
        locked_faults=50,
        pages_committed=100,
        bytes_committed=10_000,
        branches=50_000,
        pt_bytes=20_000,
        perf_log_bytes=25_000,
    )
    base.update(overrides)
    return RunStats(**base)


class TestCostModel:
    def test_inspector_costs_more_than_native_for_same_counts(self):
        model = CostModel()
        native = model.apply(make_stats(mode="native", page_faults=0, locked_faults=0, pt_bytes=0,
                                        perf_log_bytes=0))
        traced = model.apply(make_stats())
        assert traced.total_seconds > native.total_seconds

    def test_more_faults_cost_more(self):
        model = CostModel()
        few = model.apply(make_stats(page_faults=10, locked_faults=5))
        many = model.apply(make_stats(page_faults=10_000, locked_faults=5_000))
        assert many.total_seconds > few.total_seconds

    def test_unlocked_faults_parallelise(self):
        model = CostModel()
        locked = model.apply(make_stats(page_faults=1_000, locked_faults=1_000))
        unlocked = model.apply(make_stats(page_faults=1_000, locked_faults=0))
        assert unlocked.threading_seconds < locked.threading_seconds

    def test_compute_critical_path_uses_waves(self):
        model = CostModel()
        wave_stats = make_stats(per_thread_instructions={i: 1_000 for i in range(100)})
        assert model.compute_seconds(wave_stats) == pytest.approx(
            wave_stats.instructions / 4 * 1e-9
        )

    def test_pt_cost_zero_without_trace(self):
        model = CostModel()
        stats = model.apply(make_stats(pt_bytes=0))
        assert stats.pt_seconds == 0.0

    def test_custom_parameters_respected(self):
        expensive = CostModel(CostParameters(page_fault_ns=1e6))
        cheap = CostModel(CostParameters(page_fault_ns=1.0))
        assert (
            expensive.apply(make_stats()).total_seconds
            > cheap.apply(make_stats()).total_seconds
        )

    def test_work_exceeds_time(self):
        stats = CostModel().apply(make_stats())
        assert stats.work_seconds >= stats.total_seconds

    def test_overhead_against_baseline(self):
        model = CostModel()
        native = model.apply(make_stats(mode="native", page_faults=0, locked_faults=0,
                                        pt_bytes=0, perf_log_bytes=0))
        traced = model.apply(make_stats())
        assert traced.overhead_against(native) == pytest.approx(
            traced.total_seconds / native.total_seconds
        )

    def test_derived_rates(self):
        stats = CostModel().apply(make_stats())
        assert stats.faults_per_second > 0
        assert stats.branches_per_second > 0
        assert stats.log_bandwidth_bytes_per_second > 0
        assert stats.as_dict()["page_faults"] == 200


class TestPthreadsVeneer:
    def test_veneer_matches_object_api(self):
        backend = DirectBackend(page_size=256)
        runtime = SimRuntime(backend=backend)

        def worker(api, mutex, barrier, addr):
            pthread_mutex_lock(api, mutex)
            api.store(addr, api.load(addr) + 1)
            pthread_mutex_unlock(api, mutex)
            pthread_barrier_wait(api, barrier)
            return api.load(addr)

        def main(proc):
            api = ProgramAPI(runtime, backend, proc)
            mutex = pthread_mutex_init(api)
            barrier = pthread_barrier_init(api, 3)
            addr = api.malloc(8)
            api.store(addr, 0)
            handles = [pthread_create(api, worker, mutex, barrier, addr) for _ in range(3)]
            return [pthread_join(api, handle) for handle in handles]

        results = runtime.run(main)
        # Every worker sees the fully incremented counter after the barrier.
        assert results == [3, 3, 3]

    def test_branch_site_is_stable(self):
        assert branch_site("a.loop") == branch_site("a.loop")
        assert branch_site("a.loop") != branch_site("b.loop")

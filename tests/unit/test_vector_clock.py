"""Unit tests for vector clocks."""

import pytest

from repro.core.vector_clock import VectorClock, merge_all


class TestBasics:
    def test_empty_clock_components_are_zero(self):
        clock = VectorClock()
        assert clock.get(0) == 0
        assert clock.get(99) == 0

    def test_set_and_get(self):
        clock = VectorClock()
        clock.set(1, 5)
        assert clock.get(1) == 5

    def test_constructor_drops_zero_entries(self):
        clock = VectorClock({1: 0, 2: 3})
        assert clock.as_dict() == {2: 3}

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            VectorClock({1: -1})
        clock = VectorClock()
        with pytest.raises(ValueError):
            clock.set(1, -2)

    def test_advance_increments(self):
        clock = VectorClock()
        assert clock.advance(3) == 1
        assert clock.advance(3) == 2

    def test_advance_with_explicit_value(self):
        clock = VectorClock()
        clock.advance(1, 10)
        assert clock.get(1) == 10

    def test_advance_backwards_rejected(self):
        clock = VectorClock({1: 5})
        with pytest.raises(ValueError):
            clock.advance(1, 3)

    def test_copy_is_independent(self):
        clock = VectorClock({1: 1})
        clone = clock.copy()
        clone.set(1, 9)
        assert clock.get(1) == 1

    def test_equality_and_hash(self):
        assert VectorClock({1: 2, 3: 4}) == VectorClock({3: 4, 1: 2})
        assert hash(VectorClock({1: 2})) == hash(VectorClock({1: 2}))
        assert VectorClock({1: 2}) != VectorClock({1: 3})

    def test_iteration_is_sorted(self):
        clock = VectorClock({5: 1, 2: 7})
        assert list(clock) == [(2, 7), (5, 1)]


class TestMerge:
    def test_merge_takes_componentwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({1: 2, 2: 5, 3: 1})
        a.merge(b)
        assert a.as_dict() == {1: 3, 2: 5, 3: 1}

    def test_merged_does_not_mutate(self):
        a = VectorClock({1: 1})
        b = VectorClock({2: 2})
        c = a.merged(b)
        assert a.as_dict() == {1: 1}
        assert c.as_dict() == {1: 1, 2: 2}

    def test_merge_is_idempotent(self):
        a = VectorClock({1: 3})
        a.merge(a)
        assert a.as_dict() == {1: 3}

    def test_merge_all(self):
        clocks = [VectorClock({1: 1}), VectorClock({2: 4}), VectorClock({1: 3})]
        assert merge_all(clocks).as_dict() == {1: 3, 2: 4}


class TestOrdering:
    def test_strictly_smaller_happens_before(self):
        a = VectorClock({1: 1})
        b = VectorClock({1: 2})
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_equal_clocks_do_not_happen_before(self):
        a = VectorClock({1: 1})
        b = VectorClock({1: 1})
        assert not a.happens_before(b)
        assert not b.happens_before(a)

    def test_concurrent_clocks(self):
        a = VectorClock({1: 1})
        b = VectorClock({2: 1})
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_dominated_by_mixed(self):
        a = VectorClock({1: 1, 2: 2})
        b = VectorClock({1: 2, 2: 2})
        assert a.dominated_by(b)
        assert not b.dominated_by(a)

    def test_empty_clock_happens_before_any_nonempty(self):
        assert VectorClock().happens_before(VectorClock({1: 1}))

    def test_comparison_operators(self):
        a = VectorClock({1: 1})
        b = VectorClock({1: 2})
        assert a < b
        assert a <= b
        assert b <= b
        assert not (b < b)

    def test_release_acquire_chain_orders_threads(self):
        # Thread 1 releases after its second sub-computation, thread 2 acquires.
        t1 = VectorClock({1: 2})
        sync = VectorClock()
        sync.merge(t1)
        t2 = VectorClock({2: 1})
        t2.merge(sync)
        assert t1.happens_before(t2)

"""Unit tests for the MMU, fault delivery, diff, and shared-memory commit."""

import pytest

from repro.errors import ProtectionError
from repro.memory.address_space import SharedAddressSpace
from repro.memory.cow import ProcessView
from repro.memory.diff import apply_diff, diff_page
from repro.memory.fault_handler import FaultDispatcher, FaultKind, permissive_handler
from repro.memory.layout import HEAP_BASE, STACK_BASE
from repro.memory.mmu import MMU
from repro.memory.page import PROT_NONE, PROT_READ, PROT_READ_WRITE, PageTable
from repro.memory.shared_commit import SharedMemoryCommitter

PAGE = 256


@pytest.fixture
def space():
    return SharedAddressSpace(page_size=PAGE)


@pytest.fixture
def mmu(space):
    return MMU(space, FaultDispatcher(permissive_handler, keep_log=True))


class TestPageTable:
    def test_entries_default_to_prot_none(self):
        table = PageTable()
        assert table.entry(7).prot == PROT_NONE

    def test_protect_all_resets_access_bits(self):
        table = PageTable()
        entry = table.entry(1)
        entry.prot = PROT_READ_WRITE
        entry.dirty = True
        entry.accessed = True
        table.protect_all(PROT_NONE)
        assert entry.prot == PROT_NONE
        assert not entry.dirty
        assert not entry.accessed

    def test_dirty_pages_iteration(self):
        table = PageTable()
        table.entry(1).dirty = True
        table.entry(2).dirty = False
        assert list(table.dirty_pages()) == [1]


class TestDiff:
    def test_identical_pages_produce_empty_diff(self):
        data = bytes(range(256))
        diff = diff_page(0, data, data)
        assert diff.is_empty()
        assert diff.modified_bytes == 0

    def test_single_byte_change(self):
        twin = bytearray(64)
        current = bytearray(64)
        current[10] = 0xAA
        diff = diff_page(3, bytes(twin), bytes(current))
        assert diff.modified_bytes == 1
        assert diff.deltas[0].offset == 10

    def test_runs_are_maximal(self):
        twin = bytes(32)
        current = bytearray(32)
        current[4:8] = b"\x01\x02\x03\x04"
        current[20] = 0xFF
        diff = diff_page(0, twin, bytes(current))
        assert [d.offset for d in diff.deltas] == [4, 20]
        assert diff.modified_bytes == 5

    def test_change_at_end_of_page(self):
        twin = bytes(16)
        current = bytearray(16)
        current[-1] = 1
        diff = diff_page(0, twin, bytes(current))
        assert diff.deltas[-1].offset == 15

    def test_apply_diff_reproduces_current(self):
        twin = bytes(b"a" * 64)
        current = bytearray(twin)
        current[5:9] = b"WXYZ"
        current[40] = ord("!")
        diff = diff_page(0, twin, bytes(current))
        target = bytearray(twin)
        written = apply_diff(target, diff)
        assert target == current
        assert written == diff.modified_bytes

    def test_apply_diff_out_of_range_raises(self):
        diff = diff_page(0, bytes(8), bytes(7 * b"\x00" + b"\x01"))
        with pytest.raises(ValueError):
            apply_diff(bytearray(4), diff)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            diff_page(0, bytes(8), bytes(9))


class TestMMUAccess:
    def test_read_write_round_trip(self, mmu):
        mmu.write_word(1, HEAP_BASE, 42)
        assert mmu.read_word(1, HEAP_BASE) == 42

    def test_first_read_faults_once(self, mmu):
        mmu.register_process(1)
        mmu.read(1, HEAP_BASE, 8)
        mmu.read(1, HEAP_BASE + 8, 8)
        read_faults = [e for e in mmu.dispatcher.log if e.kind is FaultKind.READ]
        assert len(read_faults) == 1

    def test_write_after_read_faults_again(self, mmu):
        mmu.read(1, HEAP_BASE, 8)
        mmu.write(1, HEAP_BASE, b"x" * 8)
        kinds = [e.kind for e in mmu.dispatcher.log]
        assert kinds == [FaultKind.READ, FaultKind.WRITE]

    def test_write_grants_read_too(self, mmu):
        mmu.write(1, HEAP_BASE, b"x" * 8)
        mmu.read(1, HEAP_BASE, 8)
        assert mmu.dispatcher.stats.total == 1

    def test_faults_are_per_process(self, mmu):
        mmu.read(1, HEAP_BASE, 8)
        mmu.read(2, HEAP_BASE, 8)
        assert mmu.dispatcher.stats.per_pid == {1: 1, 2: 1}

    def test_faults_are_per_page(self, mmu):
        mmu.read(1, HEAP_BASE, 8)
        mmu.read(1, HEAP_BASE + PAGE, 8)
        assert mmu.dispatcher.stats.read_faults == 2

    def test_access_spanning_pages_faults_each_page(self, mmu):
        mmu.read(1, HEAP_BASE + PAGE - 4, 8)
        assert mmu.dispatcher.stats.read_faults == 2

    def test_protect_all_retriggers_faults(self, mmu):
        mmu.read(1, HEAP_BASE, 8)
        mmu.protect_all(1)
        mmu.read(1, HEAP_BASE, 8)
        assert mmu.dispatcher.stats.read_faults == 2

    def test_untracked_region_never_faults(self, mmu):
        mmu.write(1, STACK_BASE, b"data")
        mmu.read(1, STACK_BASE, 4)
        assert mmu.dispatcher.stats.total == 0

    def test_blocking_handler_raises_protection_error(self, space):
        def refusing_handler(event, entry):
            return None  # does not grant access

        mmu = MMU(space, FaultDispatcher(refusing_handler))
        with pytest.raises(ProtectionError):
            mmu.read(1, HEAP_BASE, 8)

    def test_access_stats(self, mmu):
        mmu.write(1, HEAP_BASE, b"12345678")
        mmu.read(1, HEAP_BASE, 8)
        assert mmu.stats.loads == 1
        assert mmu.stats.stores == 1
        assert mmu.stats.bytes_read == 8
        assert mmu.stats.bytes_written == 8


class TestCopyOnWriteAndCommit:
    def test_writes_are_private_until_commit(self, space):
        mmu = MMU(space)
        mmu.write_word(1, HEAP_BASE, 99)
        # The shared copy still holds zero until the process commits.
        assert space.read_word(HEAP_BASE) == 0
        assert mmu.read_word(1, HEAP_BASE) == 99

    def test_commit_publishes_writes(self, space):
        mmu = MMU(space)
        committer = SharedMemoryCommitter(space)
        mmu.write(1, HEAP_BASE, b"\x01\x02\x03\x04\x05\x06\x07\x08")
        record = committer.commit(mmu.view(1))
        assert space.read(HEAP_BASE, 8) == b"\x01\x02\x03\x04\x05\x06\x07\x08"
        # The diff is byte-level: all eight bytes differ from the zero twin.
        assert record.modified_bytes == 8
        assert record.pages == 1

    def test_commit_clears_private_state(self, space):
        mmu = MMU(space)
        committer = SharedMemoryCommitter(space)
        mmu.write_word(1, HEAP_BASE, 7)
        committer.commit(mmu.view(1))
        assert mmu.view(1).dirty_pages() == []

    def test_other_process_sees_writes_only_after_commit(self, space):
        mmu = MMU(space)
        committer = SharedMemoryCommitter(space)
        mmu.write_word(1, HEAP_BASE, 123)
        assert mmu.read_word(2, HEAP_BASE) == 0
        committer.commit(mmu.view(1))
        assert mmu.read_word(2, HEAP_BASE) == 123

    def test_disjoint_writes_to_same_page_merge(self, space):
        mmu = MMU(space)
        committer = SharedMemoryCommitter(space)
        mmu.write_word(1, HEAP_BASE, 1)
        mmu.write_word(2, HEAP_BASE + 8, 2)
        committer.commit(mmu.view(1))
        committer.commit(mmu.view(2))
        assert space.read_word(HEAP_BASE) == 1
        assert space.read_word(HEAP_BASE + 8) == 2

    def test_overlapping_writes_last_committer_wins(self, space):
        mmu = MMU(space)
        committer = SharedMemoryCommitter(space)
        mmu.write_word(1, HEAP_BASE, 111)
        mmu.write_word(2, HEAP_BASE, 222)
        committer.commit(mmu.view(1))
        committer.commit(mmu.view(2))
        assert space.read_word(HEAP_BASE) == 222

    def test_commit_of_clean_view_is_empty(self, space):
        mmu = MMU(space)
        committer = SharedMemoryCommitter(space)
        mmu.read(1, HEAP_BASE, 8)
        record = committer.commit(mmu.view(1))
        assert record.pages == 0
        assert record.modified_bytes == 0

    def test_commit_stats_accumulate(self, space):
        mmu = MMU(space)
        committer = SharedMemoryCommitter(space)
        mmu.write(1, HEAP_BASE, b"\xaa" * 8)
        mmu.write(1, HEAP_BASE + PAGE, b"\xbb" * 8)
        committer.commit(mmu.view(1))
        assert committer.stats.commits == 1
        assert committer.stats.pages_committed == 2
        assert committer.stats.bytes_committed == 16

    def test_process_view_twin_preserved(self, space):
        view = ProcessView(1, space)
        space.write(HEAP_BASE, b"original")
        page = space.pages_for(HEAP_BASE, 1)[0]
        view.ensure_private_copy(page)
        view.write_bytes(HEAP_BASE, b"modified")
        assert view.twins[page][:8] == b"original"

    def test_read_after_commit_sees_other_process_update(self, space):
        mmu = MMU(space)
        committer = SharedMemoryCommitter(space)
        # Process 1 reads (no private copy), process 2 writes and commits,
        # process 1 must then observe the new value on its next read.
        assert mmu.read_word(1, HEAP_BASE) == 0
        mmu.write_word(2, HEAP_BASE, 77)
        committer.commit(mmu.view(2))
        assert mmu.read_word(1, HEAP_BASE) == 77

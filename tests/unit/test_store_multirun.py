"""Multi-run store tests: run lifecycle, compaction, GC, and v2 back-compat.

The scenarios here are the acceptance criteria of the multi-run store:
one store ingesting several runs of *different* workloads, per-run and
cross-run queries, ``compact``/``gc`` maintenance (including a simulated
crash mid-compaction), and reading a PR-1 (format v2, single-run) store
unchanged as an implicit one-run store.
"""

import json
import os

import pytest

from repro.core.queries import backward_slice, lineage_of_pages, propagate_taint
from repro.core.serialization import node_key
from repro.errors import StoreError
from repro.inspector.api import run_with_provenance
from repro.store import (
    STORE_FORMAT_VERSION,
    ProvenanceStore,
    StoreIndexes,
    StoreQueryEngine,
    StoreSink,
)
from repro.store.__main__ import main as store_cli
from repro.store.format import (
    INDEX_DIR,
    MANIFEST_NAME,
    SEGMENTS_DIR,
    STORE_KIND,
    segment_file_name,
)
from repro.store.segment import encode_segment

from tests.unit.test_store import build_example_cpg, canonical_edges


def store_disk_bytes(path: str) -> int:
    """Total bytes of every file under the store directory."""
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            total += os.path.getsize(os.path.join(root, name))
    return total


@pytest.fixture(scope="module")
def two_workload_runs(tmp_path_factory):
    """One store holding a histogram run and a word_count run."""
    store_dir = str(tmp_path_factory.mktemp("multirun") / "store")
    first = run_with_provenance("histogram", num_threads=3, size="small", store_path=store_dir)
    second = run_with_provenance("word_count", num_threads=3, size="small", store_path=store_dir)
    return store_dir, first, second


class TestRunLifecycle:
    def test_two_workloads_one_store(self, two_workload_runs):
        store_dir, first, second = two_workload_runs
        cold = ProvenanceStore.open(store_dir)
        assert [run.workload for run in cold.manifest.runs] == ["histogram", "word_count"]
        assert cold.manifest.node_count == len(first.cpg) + len(second.cpg)

    def test_each_run_queries_like_its_own_graph(self, two_workload_runs):
        store_dir, first, second = two_workload_runs
        cold = ProvenanceStore.open(store_dir)
        engine = StoreQueryEngine(cold)
        for result in (first, second):
            run_id = result.store_run_id
            cpg = result.cpg
            for node_id in cpg.nodes()[::4]:
                assert engine.backward_slice(node_id, run=run_id) == backward_slice(cpg, node_id)
            pages = sorted(cpg.subcomputation(cpg.input_node).write_set)[:2]
            assert engine.lineage_of_pages(pages, run=run_id) == lineage_of_pages(cpg, pages)
            mine = engine.propagate_taint(pages, run=run_id)
            reference = propagate_taint(cpg, pages)
            assert mine.tainted_nodes == reference.tainted_nodes
            assert mine.tainted_pages == reference.tainted_pages

    def test_ambiguous_run_requires_explicit_id(self, two_workload_runs):
        store_dir, first, _ = two_workload_runs
        engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
        with pytest.raises(StoreError, match="pass run="):
            engine.backward_slice(first.cpg.nodes()[0])

    def test_cross_run_queries(self, two_workload_runs):
        store_dir, first, second = two_workload_runs
        engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
        pages = sorted(first.cpg.subcomputation(first.cpg.input_node).write_set)[:1]
        per_run = engine.lineage_across_runs(pages)
        assert set(per_run) == {first.store_run_id, second.store_run_id}
        assert per_run[first.store_run_id] == lineage_of_pages(first.cpg, pages)
        taints = engine.taint_across_runs(pages)
        assert set(taints) == set(per_run)

    def test_compare_lineage_identical_runs(self, tmp_path):
        # The same deterministic workload twice: every page's lineage must
        # diff to empty exclusives.
        store_dir = str(tmp_path / "store")
        first = run_with_provenance("histogram", num_threads=2, size="small", store_path=store_dir)
        second = run_with_provenance("histogram", num_threads=2, size="small", store_path=store_dir)
        engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
        page = sorted(first.cpg.subcomputation(first.cpg.input_node).write_set)[0]
        diff = engine.compare_lineage(first.store_run_id, second.store_run_id, page)
        assert diff.identical
        assert diff.common == lineage_of_pages(first.cpg, [page])

    def test_compare_lineage_differing_runs(self, tmp_path):
        store_dir = str(tmp_path / "store")
        store = ProvenanceStore.create(store_dir)
        store.ingest(build_example_cpg(), segment_nodes=3, workload="plain")
        store.ingest(build_example_cpg(racy=True), segment_nodes=3, workload="racy")
        engine = StoreQueryEngine(store)
        # Page 12 gains an extra writer (1's last sub-computation) in the
        # racy variant, so its lineage must differ between the runs.
        diff = engine.compare_lineage(1, 2, 12)
        assert not diff.identical
        assert diff.only_b and not diff.only_a
        assert diff.pages == (12,)


class TestCompaction:
    def test_compact_merges_sink_fragments(self, tmp_path):
        # A streamed run leaves short epochs + edge-only tail segments;
        # compaction must fold them into dense segments with identical
        # query results.
        store_dir = str(tmp_path / "store")
        result = run_with_provenance("histogram", num_threads=3, size="small", store_path=store_dir)
        store = ProvenanceStore.open(store_dir)
        before = store.manifest.segment_count
        assert any(info.nodes == 0 for info in store.manifest.segments)  # edge-only tails
        stats = store.compact()
        assert stats.segments_after < before
        assert not any(info.nodes == 0 for info in store.manifest.segments)
        cold = ProvenanceStore.open(store_dir)
        assert canonical_edges(cold.load_cpg()) == canonical_edges(result.cpg)
        engine = StoreQueryEngine(cold)
        for node_id in result.cpg.nodes()[::5]:
            assert engine.backward_slice(node_id) == backward_slice(result.cpg, node_id)

    def test_compact_preserves_taint_and_topo(self, tmp_path):
        store_dir = str(tmp_path / "store")
        result = run_with_provenance("histogram", num_threads=3, size="small", store_path=store_dir)
        store = ProvenanceStore.open(store_dir)
        store.compact(segment_nodes=16)
        engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
        pages = sorted(result.cpg.subcomputation(result.cpg.input_node).write_set)[:3]
        mine = engine.propagate_taint(pages)
        reference = propagate_taint(result.cpg, pages)
        assert mine.tainted_nodes == reference.tainted_nodes
        assert mine.tainted_pages == reference.tainted_pages

    def test_compact_only_touches_requested_run(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        cpg = build_example_cpg()
        store.ingest(cpg, segment_nodes=2, workload="a")
        store.ingest(cpg, segment_nodes=2, workload="b")
        run_b_segments = [info.segment_id for info in store.manifest.segments_of_run(2)]
        store.compact(run=1, segment_nodes=64)
        assert [info.segment_id for info in store.manifest.segments_of_run(2)] == run_b_segments
        assert len(store.manifest.segments_of_run(1)) == 1

    def test_compact_is_idempotent(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        store.ingest(build_example_cpg(), segment_nodes=2)
        store.compact()
        ids_after_first = store.manifest.segment_ids()
        stats = store.compact()
        assert store.manifest.segment_ids() == ids_after_first
        assert stats.segments_before == stats.segments_after

    def test_crash_between_index_save_and_manifest_commit(self, tmp_path):
        # The nastiest compaction crash window: the new generation's index
        # files were already renamed into place, but the manifest (the
        # commit point) was not.  The loaded indexes then reference
        # segments the manifest never committed; open() must detect the
        # tear and rebuild the run's indexes from the committed segments.
        from repro.store.format import run_index_dir_name

        store_dir = str(tmp_path / "store")
        store = ProvenanceStore.create(store_dir)
        cpg = build_example_cpg()
        store.ingest(cpg, segment_nodes=2)
        old_ids = store.manifest.segment_ids()
        # Compact in memory + write new segment files and new-generation
        # index files, but never commit the manifest (simulated crash).
        store._compact_run(1, 64)
        store.run_indexes[1].save(
            os.path.join(store_dir, INDEX_DIR, run_index_dir_name(1))
        )
        survivor = ProvenanceStore.open(store_dir)
        assert survivor.manifest.segment_ids() == old_ids
        # The rebuilt indexes must reference committed segments only and
        # answer every query exactly.
        assert set(survivor.indexes.node_segments.values()) <= set(old_ids)
        assert len(survivor.indexes.node_segments) == survivor.manifest.runs[0].nodes
        assert canonical_edges(survivor.load_cpg()) == canonical_edges(cpg)
        engine = StoreQueryEngine(survivor)
        for node_id in cpg.nodes():
            assert engine.backward_slice(node_id) == backward_slice(cpg, node_id)
        mine = engine.propagate_taint([100, 101])
        reference = propagate_taint(cpg, [100, 101])
        assert mine.tainted_nodes == reference.tainted_nodes

    def test_crash_mid_compaction_leaves_old_generation(self, tmp_path):
        # Model the crash window precisely: compaction has written its new
        # segment files but died before the manifest commit -- the disk
        # holds old (committed) segments plus stray new files, and the
        # manifest and indexes still describe the old generation.
        store_dir = str(tmp_path / "store")
        store = ProvenanceStore.create(store_dir)
        cpg = build_example_cpg()
        store.ingest(cpg, segment_nodes=2)
        old_ids = store.manifest.segment_ids()
        total_nodes = store.manifest.node_count
        # Write stray "new generation" files without committing them.
        nodes = [cpg.subcomputation(node_id) for node_id in cpg.topological_order()]
        framed, _raw = encode_segment(nodes, [])
        for stray_id in (900, 901):
            with open(
                os.path.join(store_dir, SEGMENTS_DIR, segment_file_name(stray_id)), "wb"
            ) as handle:
                handle.write(framed)
        survivor = ProvenanceStore.open(store_dir)
        assert survivor.manifest.segment_ids() == old_ids
        assert survivor.manifest.node_count == total_nodes
        assert canonical_edges(survivor.load_cpg()) == canonical_edges(cpg)
        # Index/manifest consistency: every indexed node resolves.
        indexes = survivor.indexes
        for key, segment_id in indexes.node_segments.items():
            assert segment_id in set(old_ids)
        # The next maintenance operation sweeps the stray files.
        survivor.compact()
        remaining = set(os.listdir(os.path.join(store_dir, SEGMENTS_DIR)))
        assert segment_file_name(900) not in remaining
        assert segment_file_name(901) not in remaining


class TestGarbageCollection:
    def test_gc_keep_last_drops_oldest_and_shrinks_disk(self, tmp_path):
        store_dir = str(tmp_path / "store")
        run_with_provenance("histogram", num_threads=2, size="small", store_path=store_dir)
        survivor_result = run_with_provenance(
            "word_count", num_threads=2, size="small", store_path=store_dir
        )
        bytes_before = store_disk_bytes(store_dir)
        store = ProvenanceStore.open(store_dir)
        dropped_run = store.run_ids()[0]
        stats = store.gc(keep_last=1)
        assert stats.runs_dropped == [dropped_run]
        assert stats.bytes_reclaimed > 0
        assert store_disk_bytes(store_dir) < bytes_before  # provably shrinks
        cold = ProvenanceStore.open(store_dir)
        assert cold.run_ids() == [survivor_result.store_run_id]
        assert canonical_edges(cold.load_cpg()) == canonical_edges(survivor_result.cpg)

    def test_gc_explicit_runs(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        cpg = build_example_cpg()
        store.ingest(cpg, workload="keep")
        store.ingest(cpg, workload="drop")
        store.ingest(cpg, workload="keep-too")
        stats = store.gc(runs=[2])
        assert stats.runs_dropped == [2]
        assert store.run_ids() == [1, 3]
        reopened = ProvenanceStore.open(str(tmp_path))
        assert reopened.run_ids() == [1, 3]
        assert canonical_edges(reopened.load_cpg(run=3)) == canonical_edges(cpg)

    def test_gc_deduplicates_run_selector(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        store.ingest(build_example_cpg(), workload="a")
        store.ingest(build_example_cpg(), workload="b")
        stats = store.gc(runs=[1, 1])
        assert stats.runs_dropped == [1]
        assert ProvenanceStore.open(str(tmp_path)).run_ids() == [2]

    def test_gc_rejects_ambiguous_or_unknown_selectors(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        store.ingest(build_example_cpg())
        with pytest.raises(StoreError, match="exactly one"):
            store.gc()
        with pytest.raises(StoreError, match="exactly one"):
            store.gc(keep_last=1, runs=[1])
        with pytest.raises(StoreError, match="no run 99"):
            store.gc(runs=[99])

    def test_gc_keep_last_ignores_fully_quarantined_runs(self, tmp_path):
        # A run whose every segment is quarantined is damage awaiting
        # repair: it must neither consume a keep slot (shadow-dropping a
        # live run) nor be dropped by keep_last itself.
        store = ProvenanceStore.create(str(tmp_path))
        cpg = build_example_cpg()
        store.ingest(cpg, workload="r1")
        store.ingest(cpg, workload="r2")
        store.ingest(cpg, workload="r3")
        for info in store.manifest.segments_of_run(3):
            store.quarantine_segment(info.segment_id, "rot suspected", durable=True)
        # Two live runs, keep_last=2: nothing to drop -- run 3 does not
        # count against the budget.
        stats = store.gc(keep_last=2)
        assert stats.runs_dropped == []
        assert store.run_ids() == [1, 2, 3]
        # A new live run overflows the budget: the oldest *live* run goes,
        # the quarantined one stays for repair.
        store.ingest(cpg, workload="r4")
        stats = store.gc(keep_last=2)
        assert stats.runs_dropped == [1]
        assert store.run_ids() == [2, 3, 4]
        # An explicit selector still removes it once the operator gives up.
        assert store.gc(runs=[3]).runs_dropped == [3]
        assert ProvenanceStore.open(str(tmp_path)).run_ids() == [2, 4]

    def test_gc_everything_leaves_usable_empty_store(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        store.ingest(build_example_cpg())
        store.gc(keep_last=0)
        assert store.run_ids() == []
        assert store.manifest.node_count == 0
        assert os.listdir(os.path.join(str(tmp_path), SEGMENTS_DIR)) == []
        # Run ids are never reused after GC.
        store.ingest(build_example_cpg())
        assert store.run_ids() == [2]

    def test_run_ids_and_segment_ids_never_reused(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        store.ingest(build_example_cpg(), segment_nodes=4)
        first_segments = set(store.manifest.segment_ids())
        store.gc(runs=[1])
        store.ingest(build_example_cpg(), segment_nodes=4)
        assert not (set(store.manifest.segment_ids()) & first_segments)


# ---------------------------------------------------------------------- #
# v2 -> v3 back-compat
# ---------------------------------------------------------------------- #


def write_v2_store(path: str, cpg, segment_nodes: int = 4) -> None:
    """Write a store in the PR-1 (format v2, single-run) layout.

    Mirrors what the v2 ``ProvenanceStore.ingest`` produced: contiguous
    segment ids from 1, a flat ``index/`` directory, and a v2 manifest with
    a free-form run log.
    """
    os.makedirs(os.path.join(path, SEGMENTS_DIR))
    order = cpg.topological_order()
    edges_by_target = {}
    for source, target, attrs in cpg.edges():
        kind = attrs["kind"]
        extra = {key: value for key, value in attrs.items() if key != "kind"}
        edges_by_target.setdefault(target, []).append((source, target, kind, extra))
    indexes = StoreIndexes()
    manifest_segments = []
    node_count = edge_count = 0
    for start in range(0, len(order), segment_nodes):
        batch = order[start : start + segment_nodes]
        nodes = [cpg.subcomputation(node_id) for node_id in batch]
        edges = []
        for node_id in batch:
            edges.extend(edges_by_target.get(node_id, ()))
        segment_id = len(manifest_segments) + 1
        framed, raw_bytes = encode_segment(nodes, edges)
        with open(os.path.join(path, SEGMENTS_DIR, segment_file_name(segment_id)), "wb") as handle:
            handle.write(framed)
        for rank, node in enumerate(nodes, start=start):
            indexes.add_node(segment_id, node, rank)
        for edge in edges:
            indexes.add_edge(segment_id, edge)
        manifest_segments.append(
            {
                "id": segment_id,
                "nodes": len(nodes),
                "edges": len(edges),
                "raw_bytes": raw_bytes,
                "stored_bytes": len(framed),
            }
        )
        node_count += len(nodes)
        edge_count += len(edges)
    indexes.save(os.path.join(path, INDEX_DIR))  # v2: flat index directory
    manifest = {
        "kind": STORE_KIND,
        "version": 2,
        "segments": manifest_segments,
        "node_count": node_count,
        "edge_count": edge_count,
        "next_topo": len(order),
        "runs": [{"workload": "legacy-example", "threads": 3}],
        "meta": {},
    }
    with open(os.path.join(path, MANIFEST_NAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, sort_keys=True, indent=2)


class TestV2BackCompat:
    @pytest.fixture()
    def v2_store_dir(self, tmp_path):
        cpg = build_example_cpg()
        store_dir = str(tmp_path / "v2-store")
        write_v2_store(store_dir, cpg)
        return cpg, store_dir

    def test_v2_store_opens_as_one_run(self, v2_store_dir):
        cpg, store_dir = v2_store_dir
        store = ProvenanceStore.open(store_dir)
        assert store.manifest.version == 2  # untouched on disk until a write
        assert store.run_ids() == [1]
        run = store.manifest.runs[0]
        assert run.workload == "legacy-example"
        assert run.nodes == len(cpg)
        assert canonical_edges(store.load_cpg()) == canonical_edges(cpg)

    def test_v2_store_queries_unchanged(self, v2_store_dir):
        cpg, store_dir = v2_store_dir
        engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
        for node_id in cpg.nodes():
            assert engine.backward_slice(node_id) == backward_slice(cpg, node_id)
        mine = engine.propagate_taint([100, 101])
        reference = propagate_taint(cpg, [100, 101])
        assert mine.tainted_nodes == reference.tainted_nodes
        assert mine.tainted_pages == reference.tainted_pages

    def test_v2_store_cli_queries(self, v2_store_dir, capsys):
        cpg, store_dir = v2_store_dir
        target = cpg.thread_nodes(3)[0]
        assert store_cli(["slice", store_dir, "--node", node_key(target), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == sorted(node_key(n) for n in backward_slice(cpg, target))

    def test_second_run_upgrades_v2_store_in_place(self, v2_store_dir):
        cpg, store_dir = v2_store_dir
        store = ProvenanceStore.open(store_dir)
        store.ingest(build_example_cpg(racy=True), workload="fresh")
        assert store.run_ids() == [1, 2]
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.manifest.version == STORE_FORMAT_VERSION  # rewritten by the flush
        assert [run.workload for run in reopened.manifest.runs] == ["legacy-example", "fresh"]
        assert canonical_edges(reopened.load_cpg(run=1)) == canonical_edges(cpg)
        # Legacy run maintenance works too: gc away the v2 run.
        stats = reopened.gc(runs=[1])
        assert stats.bytes_reclaimed > 0
        assert ProvenanceStore.open(store_dir).run_ids() == [2]


# ---------------------------------------------------------------------- #
# Multi-run CLI surface
# ---------------------------------------------------------------------- #


class TestMultiRunCLI:
    @pytest.fixture()
    def multirun_store(self, tmp_path):
        from repro.core.serialization import write_cpg

        cpg_a, cpg_b = build_example_cpg(), build_example_cpg(racy=True)
        json_a, json_b = tmp_path / "a.json", tmp_path / "b.json"
        write_cpg(cpg_a, str(json_a))
        write_cpg(cpg_b, str(json_b))
        store_dir = str(tmp_path / "store")
        assert store_cli(["ingest", store_dir, str(json_a), "--workload", "plain"]) == 0
        assert store_cli(["ingest", store_dir, str(json_b), "--workload", "racy"]) == 0
        return cpg_a, cpg_b, store_dir

    def test_runs_command(self, multirun_store, capsys):
        _, _, store_dir = multirun_store
        assert store_cli(["runs", store_dir, "--json"]) == 0
        runs = json.loads(capsys.readouterr().out)
        assert [run["id"] for run in runs] == [1, 2]
        assert [run["workload"] for run in runs] == ["plain", "racy"]

    def test_slice_requires_run_on_multirun_store(self, multirun_store, capsys):
        _, _, store_dir = multirun_store
        assert store_cli(["slice", store_dir, "--node", "1:0"]) == 1
        assert "pass run=" in capsys.readouterr().err

    def test_slice_and_taint_with_run_filter(self, multirun_store, capsys):
        cpg_a, cpg_b, store_dir = multirun_store
        assert store_cli(["slice", store_dir, "--pages", "12", "--run", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run"] == 2
        assert payload["nodes"] == sorted(node_key(n) for n in lineage_of_pages(cpg_b, [12]))
        assert store_cli(["taint", store_dir, "--pages", "100", "--run", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        reference = propagate_taint(cpg_a, [100])
        assert payload["tainted_nodes"] == sorted(node_key(n) for n in reference.tainted_nodes)

    def test_compact_and_gc_commands(self, multirun_store, capsys):
        _, _, store_dir = multirun_store
        assert store_cli(["compact", store_dir, "--json"]) == 0
        compacted = json.loads(capsys.readouterr().out)
        assert compacted["segments_after"] <= compacted["segments_before"]
        assert store_cli(["gc", store_dir, "--keep-last", "1", "--json"]) == 0
        collected = json.loads(capsys.readouterr().out)
        assert collected["runs_dropped"] == [1]
        assert collected["bytes_reclaimed"] > 0
        assert store_cli(["runs", store_dir, "--json"]) == 0
        assert [run["id"] for run in json.loads(capsys.readouterr().out)] == [2]

    def test_gc_selector_validation(self, multirun_store, capsys):
        _, _, store_dir = multirun_store
        assert store_cli(["gc", store_dir]) == 2
        assert store_cli(["gc", store_dir, "--keep-last", "1", "--runs", "1"]) == 2

"""Unit tests for the simulated runtime, schedulers, and sync primitives."""

import pytest

from repro.errors import DeadlockError, InvalidSyncStateError, ThreadingError
from repro.threads.backend import DirectBackend
from repro.threads.process import ProcessState
from repro.threads.program import ProgramAPI
from repro.threads.runtime import SimRuntime
from repro.threads.scheduler import FixedScheduler, RandomScheduler, RoundRobinScheduler


def run_program(main, scheduler=None, backend=None):
    """Run ``main(api)`` on a fresh runtime and return (result, backend, runtime)."""
    backend = backend if backend is not None else DirectBackend(page_size=256)
    runtime = SimRuntime(scheduler=scheduler, backend=backend)

    def entry(proc):
        return main(ProgramAPI(runtime, backend, proc))

    result = runtime.run(entry)
    return result, backend, runtime


class TestSchedulers:
    def test_round_robin_cycles(self):
        sched = RoundRobinScheduler()
        assert sched.pick([0, 1, 2], None) == 0
        assert sched.pick([0, 1, 2], 0) == 1
        assert sched.pick([0, 1, 2], 2) == 0

    def test_round_robin_skips_missing(self):
        sched = RoundRobinScheduler()
        assert sched.pick([0, 3, 5], 3) == 5
        assert sched.pick([0, 3, 5], 5) == 0

    def test_random_is_deterministic_per_seed(self):
        a = RandomScheduler(seed=7)
        b = RandomScheduler(seed=7)
        picks_a = [a.pick([0, 1, 2, 3], None) for _ in range(20)]
        picks_b = [b.pick([0, 1, 2, 3], None) for _ in range(20)]
        assert picks_a == picks_b

    def test_random_reset_restarts_sequence(self):
        sched = RandomScheduler(seed=3)
        first = [sched.pick([0, 1, 2], None) for _ in range(10)]
        sched.reset()
        second = [sched.pick([0, 1, 2], None) for _ in range(10)]
        assert first == second

    def test_fixed_scheduler_replays_order(self):
        sched = FixedScheduler([2, 1, 0])
        assert sched.pick([0, 1, 2], None) == 2
        assert sched.pick([0, 1, 2], None) == 1
        assert sched.pick([0, 1, 2], None) == 0

    def test_fixed_scheduler_falls_back(self):
        sched = FixedScheduler([5])
        assert sched.pick([0, 1], None) == 0


class TestRuntimeBasics:
    def test_single_process_returns_result(self):
        result, _, _ = run_program(lambda api: 42)
        assert result == 42

    def test_spawn_and_join_returns_child_result(self):
        def child(api, value):
            return value * 2

        def main(api):
            handle = api.spawn(child, 21)
            return api.join(handle)

        result, _, _ = run_program(main)
        assert result == 42

    def test_many_children(self):
        def child(api, i):
            return i

        def main(api):
            handles = [api.spawn(child, i) for i in range(10)]
            return sum(api.join(h) for h in handles)

        result, _, runtime = run_program(main)
        assert result == sum(range(10))
        assert runtime.process_creations == 11

    def test_nested_spawn(self):
        def grandchild(api):
            return 1

        def child(api):
            return api.join(api.spawn(grandchild)) + 1

        def main(api):
            return api.join(api.spawn(child)) + 1

        result, _, _ = run_program(main)
        assert result == 3

    def test_exception_in_child_propagates(self):
        def child(api):
            raise ValueError("boom")

        def main(api):
            handle = api.spawn(child)
            return api.join(handle)

        with pytest.raises(ValueError, match="boom"):
            run_program(main)

    def test_exception_in_main_propagates(self):
        def main(api):
            raise RuntimeError("main failed")

        with pytest.raises(RuntimeError, match="main failed"):
            run_program(main)

    def test_join_self_raises(self):
        def main(api):
            class FakeHandle:
                process = api.process

            return api.runtime.join(api.process, api.process)

        with pytest.raises(ThreadingError):
            run_program(main)

    def test_runtime_is_single_use(self):
        backend = DirectBackend(page_size=256)
        runtime = SimRuntime(backend=backend)
        runtime.run(lambda proc: None)
        with pytest.raises(ThreadingError):
            runtime.run(lambda proc: None)

    def test_all_processes_terminate(self):
        def child(api):
            return None

        def main(api):
            handles = [api.spawn(child) for _ in range(4)]
            for handle in handles:
                api.join(handle)

        _, _, runtime = run_program(main)
        assert all(p.state is ProcessState.TERMINATED for p in runtime.processes)


class TestMutex:
    def test_lock_protects_critical_section(self):
        def worker(api, mutex, counter_addr, iterations):
            for _ in range(iterations):
                api.lock(mutex)
                api.store(counter_addr, api.load(counter_addr) + 1)
                api.unlock(mutex)

        def main(api):
            mutex = api.mutex()
            counter = api.malloc(8)
            api.store(counter, 0)
            handles = [api.spawn(worker, mutex, counter, 10) for _ in range(4)]
            for handle in handles:
                api.join(handle)
            return api.load(counter)

        result, _, _ = run_program(main)
        assert result == 40

    def test_unlock_not_owner_raises(self):
        def main(api):
            mutex = api.mutex()
            api.unlock(mutex)

        with pytest.raises(InvalidSyncStateError):
            run_program(main)

    def test_relock_raises(self):
        def main(api):
            mutex = api.mutex()
            api.lock(mutex)
            api.lock(mutex)

        with pytest.raises(InvalidSyncStateError):
            run_program(main)

    def test_trylock_succeeds_when_free(self):
        def main(api):
            mutex = api.mutex()
            acquired = api.try_lock(mutex)
            api.unlock(mutex)
            return acquired

        result, _, _ = run_program(main)
        assert result is True

    def test_trylock_fails_when_held(self):
        def holder(api, mutex, start, done):
            api.lock(mutex)
            api.sem_post(start)
            api.sem_wait(done)
            api.unlock(mutex)

        def main(api):
            mutex = api.mutex()
            start = api.semaphore(0)
            done = api.semaphore(0)
            handle = api.spawn(holder, mutex, start, done)
            api.sem_wait(start)
            acquired = api.try_lock(mutex)
            api.sem_post(done)
            api.join(handle)
            return acquired

        result, _, _ = run_program(main)
        assert result is False

    def test_contention_counters(self):
        def worker(api, mutex):
            api.lock(mutex)
            api.compute(5)
            api.unlock(mutex)

        def main(api):
            mutex = api.mutex()
            handles = [api.spawn(worker, mutex) for _ in range(3)]
            for handle in handles:
                api.join(handle)
            return mutex.acquisitions

        result, _, _ = run_program(main)
        assert result == 3


class TestSemaphoreCondvarBarrier:
    def test_semaphore_orders_producer_consumer(self):
        def producer(api, sem, addr):
            api.store(addr, 99)
            api.sem_post(sem)

        def main(api):
            sem = api.semaphore(0)
            addr = api.malloc(8)
            handle = api.spawn(producer, sem, addr)
            api.sem_wait(sem)
            value = api.load(addr)
            api.join(handle)
            return value

        result, _, _ = run_program(main)
        assert result == 99

    def test_semaphore_initial_value(self):
        def main(api):
            sem = api.semaphore(2)
            api.sem_wait(sem)
            api.sem_wait(sem)
            return sem.value

        result, _, _ = run_program(main)
        assert result == 0

    def test_condvar_wakeup(self):
        def waiter(api, mutex, cond, flag_addr):
            api.lock(mutex)
            while api.branch(api.load(flag_addr) == 0, "waiter.check"):
                api.cond_wait(cond, mutex)
            value = api.load(flag_addr)
            api.unlock(mutex)
            return value

        def main(api):
            mutex = api.mutex()
            cond = api.condvar()
            flag = api.malloc(8)
            api.store(flag, 0)
            handle = api.spawn(waiter, mutex, cond, flag)
            api.lock(mutex)
            api.store(flag, 5)
            api.cond_signal(cond)
            api.unlock(mutex)
            return api.join(handle)

        result, _, _ = run_program(main)
        assert result == 5

    def test_condvar_broadcast_wakes_all(self):
        def waiter(api, mutex, cond, flag_addr):
            api.lock(mutex)
            while api.branch(api.load(flag_addr) == 0, "bwaiter.check"):
                api.cond_wait(cond, mutex)
            api.unlock(mutex)
            return 1

        def main(api):
            mutex = api.mutex()
            cond = api.condvar()
            flag = api.malloc(8)
            handles = [api.spawn(waiter, mutex, cond, flag) for _ in range(3)]
            api.lock(mutex)
            api.store(flag, 1)
            api.cond_broadcast(cond)
            api.unlock(mutex)
            return sum(api.join(h) for h in handles)

        result, _, _ = run_program(main)
        assert result == 3

    def test_condvar_wait_without_mutex_raises(self):
        def main(api):
            mutex = api.mutex()
            cond = api.condvar()
            api.cond_wait(cond, mutex)

        with pytest.raises(InvalidSyncStateError):
            run_program(main)

    def test_barrier_synchronizes_phases(self):
        def worker(api, barrier, addr, index):
            api.store(addr + index * 8, 1)
            api.barrier_wait(barrier)
            total = 0
            for i in range(3):
                total += api.load(addr + i * 8)
            return total

        def main(api):
            barrier = api.barrier(3)
            addr = api.malloc(24)
            handles = [api.spawn(worker, barrier, addr, i) for i in range(3)]
            return [api.join(h) for h in handles]

        result, _, _ = run_program(main)
        # Every worker must observe all three pre-barrier writes.
        assert result == [3, 3, 3]

    def test_barrier_serial_thread_unique(self):
        def worker(api, barrier):
            return api.barrier_wait(barrier)

        def main(api):
            barrier = api.barrier(4)
            handles = [api.spawn(worker, barrier) for _ in range(4)]
            return sum(1 for h in handles if api.join(h))

        result, _, _ = run_program(main)
        assert result == 1

    def test_barrier_is_cyclic(self):
        def worker(api, barrier):
            for _ in range(3):
                api.barrier_wait(barrier)
            return True

        def main(api):
            barrier = api.barrier(2)
            handles = [api.spawn(worker, barrier) for _ in range(2)]
            return all(api.join(h) for h in handles)

        result, _, _ = run_program(main)
        assert result is True

    def test_invalid_barrier_parties(self):
        def main(api):
            api.barrier(0)

        with pytest.raises(InvalidSyncStateError):
            run_program(main)


class TestRWLock:
    def test_multiple_readers_allowed(self):
        def reader(api, lock, addr):
            api.rw_rdlock(lock)
            value = api.load(addr)
            api.rw_unlock(lock)
            return value

        def main(api):
            lock = api.rwlock()
            addr = api.malloc(8)
            api.store(addr, 7)
            handles = [api.spawn(reader, lock, addr) for _ in range(3)]
            return [api.join(h) for h in handles]

        result, _, _ = run_program(main)
        assert result == [7, 7, 7]

    def test_writer_excludes_readers(self):
        def writer(api, lock, addr):
            api.rw_wrlock(lock)
            api.store(addr, api.load(addr) + 1)
            api.rw_unlock(lock)

        def main(api):
            lock = api.rwlock()
            addr = api.malloc(8)
            handles = [api.spawn(writer, lock, addr) for _ in range(5)]
            for h in handles:
                api.join(h)
            return api.load(addr)

        result, _, _ = run_program(main)
        assert result == 5

    def test_unlock_without_hold_raises(self):
        def main(api):
            lock = api.rwlock()
            api.rw_unlock(lock)

        with pytest.raises(InvalidSyncStateError):
            run_program(main)


class TestDeadlockDetection:
    def test_self_deadlock_detected(self):
        def main(api):
            sem = api.semaphore(0)
            api.sem_wait(sem)  # nobody will ever post

        with pytest.raises(DeadlockError):
            run_program(main)

    def test_abba_deadlock_detected(self):
        def worker_a(api, m1, m2, gate):
            api.lock(m1)
            api.sem_post(gate)
            api.lock(m2)
            api.unlock(m2)
            api.unlock(m1)

        def main(api):
            m1, m2 = api.mutex(), api.mutex()
            gate = api.semaphore(0)
            handle = api.spawn(worker_a, m1, m2, gate)
            api.lock(m2)
            api.sem_wait(gate)
            api.lock(m1)
            api.unlock(m1)
            api.unlock(m2)
            api.join(handle)

        with pytest.raises(DeadlockError):
            run_program(main)


class TestScheduleIndependence:
    def test_data_race_free_program_result_is_schedule_independent(self):
        def worker(api, mutex, addr, amount):
            api.lock(mutex)
            api.store(addr, api.load(addr) + amount)
            api.unlock(mutex)

        def main(api):
            mutex = api.mutex()
            addr = api.malloc(8)
            handles = [api.spawn(worker, mutex, addr, i) for i in range(1, 6)]
            for handle in handles:
                api.join(handle)
            return api.load(addr)

        results = set()
        for seed in range(5):
            result, _, _ = run_program(main, scheduler=RandomScheduler(seed=seed))
            results.add(result)
        assert results == {15}

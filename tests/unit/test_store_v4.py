"""Store format 4: codecs, append-only index deltas, streaming compaction.

Covers the v4 refactor's own guarantees on top of the existing store
suites: v3 stores open/query identically and upgrade in place, mixed-codec
stores decode correctly through the query engine, torn index-delta
generations are recovered from segments, compaction streams instead of
materializing whole runs, and the cross-run page summary skips runs
without loading their indexes.
"""

import json
import os

import pytest

from repro.core.algorithm import ProvenanceTracker
from repro.core.cpg import EdgeKind
from repro.core.dependencies import derive_data_edges
from repro.core.queries import backward_slice, lineage_of_pages, propagate_taint
from repro.core.thunk import SubComputation
from repro.core.vector_clock import VectorClock
from repro.errors import StoreError
from repro.store import (
    DEFAULT_CODEC,
    STORE_FORMAT_VERSION,
    ProvenanceStore,
    StoreIndexes,
    StoreQueryEngine,
    StoreSink,
)
from repro.store.format import (
    INDEX_DIR,
    MANIFEST_NAME,
    PAGES_RUNS_FILE,
    STORE_FORMAT_VERSION_V3,
    index_base_file_name,
    index_delta_file_name,
    run_index_dir_name,
)
from repro.store.segment import decode_segment, encode_segment, segment_codec_name


def build_example_cpg():
    """A three-thread lock-schedule CPG with input pages and data edges."""
    tracker = ProvenanceTracker()
    tracker.register_input_pages({100, 101})
    lock = 7
    for tid in (1, 2, 3):
        tracker.on_thread_start(tid)
    tracker.on_memory_access(1, 100, is_write=False)
    tracker.on_memory_access(1, 10, is_write=True)
    tracker.on_sync_boundary(1, "mutex_unlock")
    tracker.on_release(1, lock)
    tracker.begin_next(1)
    tracker.on_sync_boundary(2, "mutex_lock")
    tracker.on_acquire(2, lock)
    tracker.begin_next(2)
    tracker.on_memory_access(2, 10, is_write=False)
    tracker.on_memory_access(2, 11, is_write=True)
    tracker.on_sync_boundary(2, "mutex_unlock")
    tracker.on_release(2, lock)
    tracker.begin_next(2)
    tracker.on_sync_boundary(3, "mutex_lock")
    tracker.on_acquire(3, lock)
    tracker.begin_next(3)
    tracker.on_memory_access(3, 11, is_write=False)
    tracker.on_memory_access(3, 101, is_write=False)
    tracker.on_memory_access(3, 12, is_write=True)
    for tid in (1, 2, 3):
        tracker.on_thread_end(tid)
    cpg = tracker.finalize()
    derive_data_edges(cpg)
    return cpg


def canonical_edges(cpg):
    entries = []
    for source, target, attrs in cpg.edges():
        kind = attrs["kind"]
        if kind is EdgeKind.SYNC:
            extra = (attrs.get("object_id"), attrs.get("operation", ""))
        elif kind is EdgeKind.DATA:
            extra = (tuple(sorted(attrs.get("pages", ()))),)
        else:
            extra = ()
        entries.append((source, target, kind.value, extra))
    return sorted(entries)


def make_node(tid, index, reads=(), writes=()):
    node = SubComputation(tid=tid, index=index, clock=VectorClock({tid: index + 1}))
    node.read_set.update(reads)
    node.write_set.update(writes)
    return node


def assert_engine_matches_memory(store_dir, cpg, run=None):
    """Every query family answered by the engine equals the in-memory result."""
    store = ProvenanceStore.open(store_dir)
    engine = StoreQueryEngine(store)
    assert canonical_edges(store.load_cpg(run=run)) == canonical_edges(cpg)
    for node_id in cpg.nodes():
        assert engine.backward_slice(node_id, run=run) == backward_slice(cpg, node_id)
    assert engine.lineage_of_pages([100, 101], run=run) == lineage_of_pages(cpg, [100, 101])
    mine = engine.propagate_taint([100, 101], run=run)
    reference = propagate_taint(cpg, [100, 101])
    assert mine.tainted_nodes == reference.tainted_nodes
    assert mine.tainted_pages == reference.tainted_pages


def downgrade_to_v3(store_dir):
    """Rewrite a (json-codec) v4 store directory as a genuine v3 store.

    The inverse of the in-place upgrade: whole-index JSON files, a
    version-3 manifest without codec/index-generation columns, and no v4
    artefacts -- byte-layout-wise what PR 2 wrote.
    """
    store = ProvenanceStore.open(store_dir)
    for run_id in store.run_ids():
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(run_id))
        store.indexes_for(run_id).save(run_dir)
        for name in os.listdir(run_dir):
            if name.endswith(".bin"):
                os.remove(os.path.join(run_dir, name))
    summary = os.path.join(store_dir, INDEX_DIR, PAGES_RUNS_FILE)
    if os.path.exists(summary):
        os.remove(summary)
    manifest_path = os.path.join(store_dir, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    document["version"] = STORE_FORMAT_VERSION_V3
    for entry in document["segments"]:
        assert entry["codec"] == "json", "v3 fixtures must hold json segments"
        del entry["codec"]
    for entry in document["runs"]:
        for key in ("index_base", "index_deltas", "next_index_gen"):
            entry.pop(key, None)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)


@pytest.fixture()
def v3_store(tmp_path):
    cpg = build_example_cpg()
    store_dir = str(tmp_path / "v3-store")
    ProvenanceStore.create(store_dir).ingest(
        cpg, segment_nodes=3, workload="legacy", codec="json"
    )
    downgrade_to_v3(store_dir)
    return cpg, store_dir


# ---------------------------------------------------------------------- #
# v3 back-compat and in-place upgrade
# ---------------------------------------------------------------------- #


class TestV3BackCompat:
    def test_v3_store_opens_and_queries_identically(self, v3_store):
        cpg, store_dir = v3_store
        store = ProvenanceStore.open(store_dir)
        assert store.manifest.version == STORE_FORMAT_VERSION_V3
        assert all(info.codec == "json" for info in store.manifest.segments)
        assert_engine_matches_memory(store_dir, cpg)

    def test_first_write_upgrades_v3_store_in_place(self, v3_store):
        cpg, store_dir = v3_store
        store = ProvenanceStore.open(store_dir)
        store.ingest(build_example_cpg(), workload="fresh")  # default binary codec
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.manifest.version == STORE_FORMAT_VERSION
        # The legacy run's JSON indexes were folded into a v4 base file.
        legacy_run = reopened.manifest.run_info(1)
        assert legacy_run.index_base > 0
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(1))
        assert index_base_file_name(legacy_run.index_base) in os.listdir(run_dir)
        assert_engine_matches_memory(store_dir, cpg, run=1)
        assert_engine_matches_memory(store_dir, build_example_cpg(), run=2)

    def test_compaction_sweeps_superseded_legacy_index_files(self, v3_store):
        _, store_dir = v3_store
        store = ProvenanceStore.open(store_dir)
        store.compact(segment_nodes=64)
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(1))
        names = os.listdir(run_dir)
        assert not any(name.endswith(".json") for name in names)
        assert any(name.startswith("base-") for name in names)
        # The compacted segments were transcoded to the default codec.
        reopened = ProvenanceStore.open(store_dir)
        assert all(info.codec == DEFAULT_CODEC for info in reopened.manifest.segments)

    def test_v3_store_with_torn_index_rebuilds_lazily(self, v3_store):
        cpg, store_dir = v3_store
        # Corrupt one legacy index file: load must fall back to a rebuild
        # from the committed segments.
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(1))
        with open(os.path.join(run_dir, "nodes.json"), "w", encoding="utf-8") as handle:
            handle.write("{ definitely not json")
        assert_engine_matches_memory(store_dir, cpg)


# ---------------------------------------------------------------------- #
# Codec layer
# ---------------------------------------------------------------------- #


class TestCodecs:
    def test_frame_byte_identifies_codec(self):
        cpg = build_example_cpg()
        nodes = [cpg.subcomputation(node_id) for node_id in cpg.topological_order()]
        for codec in ("json", "binary", "binary-z"):
            framed, _ = encode_segment(nodes, [], codec=codec)
            assert segment_codec_name(framed) == codec
            assert set(decode_segment(framed).nodes) == {node.node_id for node in nodes}

    def test_unknown_codec_rejected_before_any_write(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        run_id = store.new_run(workload="x")
        with pytest.raises(StoreError, match="unknown segment codec"):
            store.append_segment([make_node(1, 0)], [], run=run_id, codec="protobuf")
        assert store.manifest.segment_count == 0

    def test_mixed_codec_run_queries_identically(self, tmp_path):
        cpg = build_example_cpg()
        store_dir = str(tmp_path / "mixed")
        store = ProvenanceStore.create(store_dir)
        run_id = store.new_run(workload="mixed")
        order = cpg.topological_order()
        topo = {node_id: rank for rank, node_id in enumerate(order)}
        edges_by_target = {}
        for source, target, attrs in cpg.edges():
            kind = attrs["kind"]
            extra = {key: value for key, value in attrs.items() if key != "kind"}
            edges_by_target.setdefault(target, []).append((source, target, kind, extra))
        for position, start in enumerate(range(0, len(order), 3)):
            batch = order[start : start + 3]
            nodes = [cpg.subcomputation(node_id) for node_id in batch]
            edges = [edge for node_id in batch for edge in edges_by_target.get(node_id, ())]
            store.append_segment(
                nodes,
                edges,
                run=run_id,
                topo_positions=[topo[node_id] for node_id in batch],
                codec="json" if position % 2 else "binary",
            )
        store.flush()
        codecs = {info.codec for info in store.manifest.segments}
        assert codecs == {"json", "binary"}
        assert_engine_matches_memory(store_dir, cpg)

    def test_mixed_codec_runs_across_one_store(self, tmp_path):
        cpg = build_example_cpg()
        store_dir = str(tmp_path / "runs")
        store = ProvenanceStore.create(store_dir)
        store.ingest(cpg, segment_nodes=3, workload="a", codec="json")
        store.ingest(cpg, segment_nodes=3, workload="b", codec="binary")
        info = ProvenanceStore.open(store_dir).info()
        assert set(info["codecs"]) == {"json", "binary"}
        assert_engine_matches_memory(store_dir, cpg, run=1)
        assert_engine_matches_memory(store_dir, cpg, run=2)


# ---------------------------------------------------------------------- #
# Append-only index deltas
# ---------------------------------------------------------------------- #


def stream_run(store_dir, epochs=6, nodes_per_epoch=4):
    """Stream a synthetic run, one flushed delta per epoch; returns the sink."""
    store = ProvenanceStore.open_or_create(store_dir)
    sink = StoreSink(
        store, segment_nodes=nodes_per_epoch, flush_every_epochs=1, workload="synthetic"
    )
    for position in range(epochs * nodes_per_epoch):
        node = make_node(1, position, reads={position % 7}, writes={100 + position})
        edges = []
        if position:
            edges.append(((1, position - 1), (1, position), EdgeKind.CONTROL, {}))
        sink.subcomputation_published(node, edges)
    sink.finish()
    return store, sink


class TestIndexDeltas:
    def test_each_flush_appends_one_delta(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        store, sink = stream_run(store_dir, epochs=5)
        run_info = store.manifest.run_info(sink.run_id)
        assert run_info.index_base == 0
        # One delta per flushed epoch; finish() had nothing left to add.
        assert len(run_info.index_deltas) == sink.epochs_committed
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(sink.run_id))
        for generation in run_info.index_deltas:
            assert os.path.exists(os.path.join(run_dir, index_delta_file_name(generation)))

    def test_delta_files_stay_epoch_sized(self, tmp_path):
        # The whole point: a late flush writes the same few bytes as an
        # early one, instead of rewriting the (grown) index.
        store_dir = str(tmp_path / "stream")
        store, sink = stream_run(store_dir, epochs=10)
        run_info = store.manifest.run_info(sink.run_id)
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(sink.run_id))
        sizes = [
            os.path.getsize(os.path.join(run_dir, index_delta_file_name(generation)))
            for generation in run_info.index_deltas[:-1]  # last = finish() tail edges
        ]
        assert max(sizes) <= 2 * min(sizes)

    def test_reopen_merges_base_and_deltas_exactly(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        store, sink = stream_run(store_dir)
        expected = store.indexes_for(sink.run_id)
        reopened = ProvenanceStore.open(store_dir)
        merged = reopened.indexes_for(sink.run_id)
        assert merged.node_segments == expected.node_segments
        assert merged.node_topo == expected.node_topo
        assert merged.page_writers == expected.page_writers
        assert merged.page_readers == expected.page_readers
        assert merged.thread_indexes == expected.thread_indexes
        assert merged.thread_segments == expected.thread_segments
        assert merged.sync_edges == expected.sync_edges
        assert merged.in_edge_segments == expected.in_edge_segments
        assert merged.out_edge_segments == expected.out_edge_segments

    @pytest.mark.parametrize("tear", ["truncate", "garbage", "missing"])
    def test_torn_delta_generation_recovers_from_segments(self, tmp_path, tear):
        store_dir = str(tmp_path / "stream")
        store, sink = stream_run(store_dir)
        cpg = store.load_cpg(run=sink.run_id)
        run_info = store.manifest.run_info(sink.run_id)
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(sink.run_id))
        victim = os.path.join(run_dir, index_delta_file_name(run_info.index_deltas[1]))
        if tear == "truncate":
            with open(victim, "rb") as handle:
                data = handle.read()
            with open(victim, "wb") as handle:
                handle.write(data[: len(data) // 2])
        elif tear == "garbage":
            with open(victim, "wb") as handle:
                handle.write(b"IIDX\x01\x01 not really ops")
        else:
            os.remove(victim)
        reopened = ProvenanceStore.open(store_dir)
        merged = reopened.indexes_for(sink.run_id)  # triggers rebuild
        assert merged.needs_base
        assert len(merged.node_segments) == run_info.nodes
        assert canonical_edges(reopened.load_cpg(run=sink.run_id)) == canonical_edges(cpg)
        # The rebuild is folded into a base by the next flush; after that
        # the store loads cleanly again.
        reopened.flush()
        clean = ProvenanceStore.open(store_dir)
        assert not clean.indexes_for(sink.run_id).needs_base
        assert clean.manifest.run_info(sink.run_id).index_base > 0

    def test_stray_generation_files_ignored_and_swept(self, tmp_path):
        # Crash window: a fold wrote its new base (or an extra delta) but
        # died before the manifest commit.  The stray generation must be
        # invisible on open and reclaimed by the next maintenance call.
        store_dir = str(tmp_path / "stream")
        store, sink = stream_run(store_dir)
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(sink.run_id))
        indexes = store.indexes_for(sink.run_id)
        indexes.save_base(run_dir, 4321)  # never committed
        expected_nodes = store.manifest.run_info(sink.run_id).nodes
        reopened = ProvenanceStore.open(store_dir)
        assert len(reopened.indexes_for(sink.run_id).node_segments) == expected_nodes
        reopened.compact()
        assert index_base_file_name(4321) not in os.listdir(run_dir)

    def test_crashed_rename_scratch_files_are_swept(self, tmp_path):
        # A crash between write and os.replace leaves *.tmp scratch files;
        # the next maintenance call must reclaim them everywhere.
        store_dir = str(tmp_path / "stream")
        store, sink = stream_run(store_dir)
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(sink.run_id))
        strays = [
            os.path.join(store_dir, "segments", "seg-00000099.seg.tmp"),
            os.path.join(store_dir, INDEX_DIR, PAGES_RUNS_FILE + ".tmp"),
            os.path.join(run_dir, index_delta_file_name(99) + ".tmp"),
        ]
        for path in strays:
            with open(path, "wb") as handle:
                handle.write(b"half-written")
        ProvenanceStore.open(store_dir).compact()
        for path in strays:
            assert not os.path.exists(path), path

    def test_compact_folds_deltas_and_reports_them(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        store, sink = stream_run(store_dir, epochs=6)
        pending = len(store.manifest.run_info(sink.run_id).index_deltas)
        assert pending > 1
        stats = store.compact(segment_nodes=8)
        assert stats.index_delta_files_reclaimed == pending
        run_info = store.manifest.run_info(sink.run_id)
        assert run_info.index_base > 0
        assert run_info.index_deltas == []
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(sink.run_id))
        assert not any(name.startswith("delta-") for name in os.listdir(run_dir))


# ---------------------------------------------------------------------- #
# Streaming compaction
# ---------------------------------------------------------------------- #


class TestStreamingCompaction:
    def test_peak_stays_below_whole_run_materialization(self, tmp_path):
        store_dir = str(tmp_path / "long")
        store, sink = stream_run(store_dir, epochs=30, nodes_per_epoch=4)
        total_nodes = store.manifest.run_info(sink.run_id).nodes
        cpg = store.load_cpg(run=sink.run_id)
        store = ProvenanceStore.open(store_dir)  # cold: no cached payloads
        stats = store.compact(segment_nodes=8)
        assert stats.segments_after < stats.segments_before
        assert 0 < stats.peak_resident_nodes < total_nodes
        # A small cap keeps the window tight: at most one output batch
        # (8 nodes) is buffered before it is sealed.
        assert stats.peak_resident_nodes <= 8
        reopened = ProvenanceStore.open(store_dir)
        assert canonical_edges(reopened.load_cpg(run=sink.run_id)) == canonical_edges(cpg)

    def test_compaction_preserves_ranks_and_answers(self, tmp_path):
        store_dir = str(tmp_path / "long")
        store, sink = stream_run(store_dir, epochs=8)
        run_id = sink.run_id
        before = {
            key: store.indexes_for(run_id).node_topo[key]
            for key in store.indexes_for(run_id).node_topo
        }
        taint_before = StoreQueryEngine(store).propagate_taint([0], run=run_id)
        store.compact(segment_nodes=16)
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.indexes_for(run_id).node_topo == before
        taint_after = StoreQueryEngine(reopened).propagate_taint([0], run=run_id)
        assert taint_after.tainted_nodes == taint_before.tainted_nodes
        assert taint_after.tainted_pages == taint_before.tainted_pages


# ---------------------------------------------------------------------- #
# Cross-run page summary
# ---------------------------------------------------------------------- #


def two_disjoint_runs(tmp_path):
    """Two runs touching disjoint page ranges; returns (store_dir, pages_a, pages_b)."""
    store_dir = str(tmp_path / "summary")
    store = ProvenanceStore.create(store_dir)
    from repro.store.format import RUN_COMPLETE

    for base, workload in ((0, "a"), (1000, "b")):
        run_id = store.new_run(workload=workload)
        for position in range(6):
            node = make_node(1, position, reads={base + position}, writes={base + 100 + position})
            store.append_segment([node], [], run=run_id)
        # The on-disk summary only covers complete runs.
        store.manifest.run_info(run_id).status = RUN_COMPLETE
        store.flush()
    return store_dir, list(range(0, 6)) + list(range(100, 106)), list(
        range(1000, 1006)
    ) + list(range(1100, 1106))


class TestPagesRunsSummary:
    def test_summary_written_and_mapping_correct(self, tmp_path):
        store_dir, pages_a, pages_b = two_disjoint_runs(tmp_path)
        path = os.path.join(store_dir, INDEX_DIR, PAGES_RUNS_FILE)
        assert os.path.exists(path)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["runs"] == [1, 2]
        assert document["pages"][str(pages_a[0])] == [1]
        assert document["pages"][str(pages_b[0])] == [2]
        store = ProvenanceStore.open(store_dir)
        assert store.runs_touching_pages([pages_a[0]]) == {1}
        assert store.runs_touching_pages([pages_b[0]]) == {2}
        assert store.runs_touching_pages([pages_a[0], pages_b[0]]) == {1, 2}
        assert store.runs_touching_pages([999999]) == set()

    def test_across_runs_queries_skip_untouched_runs_without_loading(self, tmp_path):
        store_dir, pages_a, _pages_b = two_disjoint_runs(tmp_path)
        store = ProvenanceStore.open(store_dir)
        engine = StoreQueryEngine(store)
        lineage = engine.lineage_across_runs([pages_a[0] + 100])
        assert set(lineage) == {1, 2}
        assert lineage[2] == set()
        assert lineage[1]  # the writer of the page, at least
        taint = engine.taint_across_runs([pages_a[0]])
        assert taint[2].tainted_nodes == set()
        assert taint[2].tainted_pages == {pages_a[0]}
        assert taint[1].tainted_nodes
        # The skipped run's indexes were never loaded (the lazy map only
        # holds what a query actually touched).
        assert 2 not in dict.keys(store.run_indexes)

    def test_skip_results_equal_unskipped_results(self, tmp_path):
        store_dir, pages_a, pages_b = two_disjoint_runs(tmp_path)
        wanted = [pages_a[0], pages_a[0] + 100, pages_b[3]]
        engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
        summarized = engine.lineage_across_runs(wanted)
        brute_engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
        brute = {
            run_id: brute_engine.lineage_of_pages(wanted, run=run_id)
            for run_id in brute_engine.store.run_ids()
        }
        assert summarized == brute
        taints = engine.taint_across_runs(wanted)
        for run_id in brute_engine.store.run_ids():
            reference = brute_engine.propagate_taint(wanted, run=run_id)
            assert taints[run_id].tainted_nodes == reference.tainted_nodes
            assert taints[run_id].tainted_pages == reference.tainted_pages

    def test_gc_drops_runs_from_summary(self, tmp_path):
        store_dir, pages_a, pages_b = two_disjoint_runs(tmp_path)
        store = ProvenanceStore.open(store_dir)
        store.gc(runs=[1])
        assert store.runs_touching_pages([pages_a[0]]) == set()
        assert store.runs_touching_pages([pages_b[0]]) == {2}
        with open(
            os.path.join(store_dir, INDEX_DIR, PAGES_RUNS_FILE), "r", encoding="utf-8"
        ) as handle:
            document = json.load(handle)
        assert document["runs"] == [2]
        assert str(pages_a[0]) not in document["pages"]

    def test_missing_summary_is_rebuilt_lazily(self, tmp_path):
        store_dir, pages_a, _ = two_disjoint_runs(tmp_path)
        os.remove(os.path.join(store_dir, INDEX_DIR, PAGES_RUNS_FILE))
        store = ProvenanceStore.open(store_dir)
        assert store.runs_touching_pages([pages_a[0]]) == {1}

    def test_malformed_summary_degrades_to_empty_cache(self, tmp_path):
        # The summary is a non-authoritative cache: any malformed shape
        # (torn write, hand edit) must degrade, never crash a query.
        store_dir, pages_a, _ = two_disjoint_runs(tmp_path)
        path = os.path.join(store_dir, INDEX_DIR, PAGES_RUNS_FILE)
        for payload in ("[1, 2]", '{"runs": 5, "pages": []}', "{ not json"):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)
            store = ProvenanceStore.open(store_dir)
            assert store.runs_touching_pages([pages_a[0]]) == {1}

    def test_summary_ahead_of_manifest_is_filtered(self, tmp_path):
        # Crash window: the summary was written for a run whose manifest
        # commit never happened; the unknown run id must be ignored.
        store_dir, pages_a, _ = two_disjoint_runs(tmp_path)
        path = os.path.join(store_dir, INDEX_DIR, PAGES_RUNS_FILE)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["runs"].append(99)
        document["pages"][str(pages_a[0])].append(99)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        store = ProvenanceStore.open(store_dir)
        assert store.runs_touching_pages([pages_a[0]]) == {1}


# ---------------------------------------------------------------------- #
# Introspection
# ---------------------------------------------------------------------- #


class TestIntrospection:
    def test_info_reports_codecs_and_delta_state(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        store, sink = stream_run(store_dir, epochs=4)
        summary = store.info()
        assert summary["codecs"] == {DEFAULT_CODEC: summary["segments"]}
        per_codec = summary["codec_bytes"][DEFAULT_CODEC]
        assert per_codec["segments"] == summary["segments"]
        assert per_codec["stored_bytes"] == summary["stored_bytes"]
        assert per_codec["stored_bytes"] > 0 and per_codec["raw_bytes"] > 0
        assert summary["index_delta_files"] > 0
        assert summary["index_delta_bytes"] > 0
        run = summary["runs"][0]
        assert run["codecs"] == {DEFAULT_CODEC: run["segments"]}
        assert run["index_delta_files"] == len(
            store.manifest.run_info(sink.run_id).index_deltas
        )

    def test_cli_info_and_compact_surface_v4_state(self, tmp_path, capsys):
        from repro.store.__main__ import main as store_cli

        store_dir = str(tmp_path / "stream")
        stream_run(store_dir, epochs=4)
        assert store_cli(["info", store_dir, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format_version"] == STORE_FORMAT_VERSION
        assert "codecs" in document and "index_delta_files" in document
        assert store_cli(["info", store_dir]) == 0
        text = capsys.readouterr().out
        assert "segment codecs:" in text and "index deltas:" in text
        assert store_cli(["compact", store_dir]) == 0
        assert "index delta file(s) folded" in capsys.readouterr().out

    def test_maintenance_stats_dict_has_v4_fields(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        store, _ = stream_run(store_dir, epochs=3)
        stats = store.compact(segment_nodes=8).to_dict()
        assert "index_delta_files_reclaimed" in stats
        assert "peak_resident_nodes" in stats

"""Unit tests for the Intel PT packet model, encoder, AUX buffer, and decoder."""

import pytest

from repro.errors import PacketDecodeError
from repro.pt.aux_buffer import AuxRingBuffer
from repro.pt.binary_map import ImageMap
from repro.pt.decoder import PTDecoder, reconstruct_branches
from repro.pt.encoder import PTEncoder
from repro.pt.packets import (
    MAX_TNT_BITS,
    FUPPacket,
    ModePacket,
    OVFPacket,
    PSBEndPacket,
    PSBPacket,
    PadPacket,
    TIPPacket,
    TNTPacket,
    TSCPacket,
    decode_packets,
    decompress_ip,
    ip_compression,
)


class TestPacketEncoding:
    def test_pad_is_one_byte(self):
        assert PadPacket().size == 1

    def test_psb_is_sixteen_bytes(self):
        assert PSBPacket().size == 16

    def test_psbend_and_ovf_are_two_bytes(self):
        assert PSBEndPacket().size == 2
        assert OVFPacket().size == 2

    def test_tsc_is_eight_bytes(self):
        assert TSCPacket(123456).size == 8

    def test_mode_is_two_bytes(self):
        assert ModePacket().size == 2

    def test_short_tnt_is_three_bytes(self):
        packet = TNTPacket(tuple([True] * 6))
        assert packet.size == 3

    def test_long_tnt_is_eight_bytes(self):
        packet = TNTPacket(tuple([True, False] * 23 + [True]))
        assert len(packet.bits) == MAX_TNT_BITS
        assert packet.size == 2 + 6

    def test_tnt_rejects_empty_and_oversized(self):
        with pytest.raises(PacketDecodeError):
            TNTPacket(())
        with pytest.raises(PacketDecodeError):
            TNTPacket(tuple([True] * (MAX_TNT_BITS + 1)))

    def test_tip_sizes_depend_on_compression(self):
        assert TIPPacket(0x1234, compressed_bytes=0).size == 2
        assert TIPPacket(0x1234, compressed_bytes=2).size == 4
        assert TIPPacket(0x1234, compressed_bytes=8).size == 10

    def test_tip_rejects_bad_compression(self):
        with pytest.raises(PacketDecodeError):
            TIPPacket(0x1234, compressed_bytes=3)

    def test_fup_is_nine_bytes(self):
        assert FUPPacket(0xDEADBEEF).size == 9


class TestPacketDecoding:
    def test_round_trip_mixed_stream(self):
        stream = (
            PSBPacket().encode()
            + TSCPacket(7).encode()
            + ModePacket().encode()
            + PSBEndPacket().encode()
            + TNTPacket((True, False, True)).encode()
            + TIPPacket(0xABCDEF, compressed_bytes=8).encode()
            + OVFPacket().encode()
            + PadPacket().encode()
        )
        packets = decode_packets(stream)
        kinds = [type(p).__name__ for p in packets]
        assert kinds == [
            "PSBPacket",
            "TSCPacket",
            "ModePacket",
            "PSBEndPacket",
            "TNTPacket",
            "TIPPacket",
            "OVFPacket",
            "PadPacket",
        ]

    def test_tnt_bits_preserved(self):
        bits = (True, False, False, True, True, False, True)
        [packet] = decode_packets(TNTPacket(bits).encode())
        assert packet.bits == bits

    def test_tsc_value_preserved(self):
        [packet] = decode_packets(TSCPacket(99999).encode())
        assert packet.timestamp == 99999

    def test_truncated_stream_raises(self):
        data = TNTPacket((True,) * 10).encode()[:-1]
        with pytest.raises(PacketDecodeError):
            decode_packets(data)

    def test_unknown_tag_raises(self):
        with pytest.raises(PacketDecodeError):
            decode_packets(bytes([0x77]))

    def test_empty_stream_decodes_to_nothing(self):
        assert decode_packets(b"") == []


class TestIPCompression:
    def test_first_ip_is_uncompressed(self):
        assert ip_compression(None, 0x1234) == 8

    def test_same_ip_is_zero_bytes(self):
        assert ip_compression(0x1234, 0x1234) == 0

    def test_nearby_ip_uses_two_bytes(self):
        assert ip_compression(0x400010, 0x400020) == 2

    def test_distant_ip_uses_more_bytes(self):
        assert ip_compression(0x1_0000_0000, 0x2_0000_0000) == 6

    def test_decompress_round_trip(self):
        previous = 0x7F1234567890
        for target in (previous, previous + 4, previous + 0x10000, previous + 0x1_0000_0000):
            nbytes = ip_compression(previous, target)
            payload = target.to_bytes(8, "little")[:nbytes]
            assert decompress_ip(previous, payload) == target

    def test_decompress_without_context_requires_full_ip(self):
        with pytest.raises(PacketDecodeError):
            decompress_ip(None, b"")


class TestAuxBuffer:
    def test_write_and_drain(self):
        buffer = AuxRingBuffer(size=64)
        buffer.write(b"abc")
        buffer.write(b"def")
        assert buffer.drain() == b"abcdef"
        assert buffer.used == 0

    def test_full_trace_mode_loses_data_on_overflow(self):
        buffer = AuxRingBuffer(size=8, snapshot_mode=False)
        buffer.write(b"12345678")
        stored = buffer.write(b"abcd")
        assert stored == 0
        assert buffer.stats.bytes_lost == 4
        assert buffer.has_gaps

    def test_overflow_episodes_counted_once(self):
        buffer = AuxRingBuffer(size=4, snapshot_mode=False)
        buffer.write(b"1234")
        buffer.write(b"a")
        buffer.write(b"b")
        assert buffer.stats.overflows == 1

    def test_snapshot_mode_overwrites_oldest(self):
        buffer = AuxRingBuffer(size=8, snapshot_mode=True)
        buffer.write(b"AAAA")
        buffer.write(b"BBBB")
        buffer.write(b"CCCC")
        content = buffer.peek()
        assert len(content) <= 8
        assert b"CCCC" in content
        assert buffer.stats.bytes_lost == 0
        assert buffer.stats.bytes_overwritten > 0

    def test_snapshot_mode_keeps_most_recent_when_payload_exceeds_size(self):
        buffer = AuxRingBuffer(size=4, snapshot_mode=True)
        buffer.write(b"0123456789")
        assert buffer.peek() == b"6789"

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            AuxRingBuffer(size=0)


class TestEncoderDecoder:
    def test_encoder_batches_tnt_bits(self):
        aux = AuxRingBuffer(size=1 << 20)
        encoder = PTEncoder(pid=1, aux=aux)
        for index in range(100):
            encoder.conditional_branch(index % 3 == 0)
        encoder.flush()
        trace = PTDecoder().decode(aux.drain())
        assert trace.tnt_bits == [index % 3 == 0 for index in range(100)]

    def test_encoder_emits_tip_for_indirect_branches(self):
        aux = AuxRingBuffer(size=1 << 20)
        encoder = PTEncoder(pid=1, aux=aux)
        targets = [0x400000, 0x400040, 0x400040, 0x7F0000000000]
        for target in targets:
            encoder.indirect_branch(target)
        encoder.flush()
        trace = PTDecoder().decode(aux.drain())
        assert trace.tip_targets == targets

    def test_interleaved_branches_preserve_order_within_kind(self):
        aux = AuxRingBuffer(size=1 << 20)
        encoder = PTEncoder(pid=1, aux=aux)
        encoder.conditional_branch(True)
        encoder.indirect_branch(0x1000)
        encoder.conditional_branch(False)
        encoder.indirect_branch(0x2000)
        encoder.flush()
        trace = PTDecoder().decode(aux.drain())
        assert trace.tnt_bits == [True, False]
        assert trace.tip_targets == [0x1000, 0x2000]

    def test_psb_groups_emitted_periodically(self):
        aux = AuxRingBuffer(size=1 << 22)
        encoder = PTEncoder(pid=1, aux=aux, psb_period=256)
        for _ in range(5000):
            encoder.conditional_branch(True)
        encoder.flush()
        trace = PTDecoder().decode(aux.drain())
        assert trace.psb_count >= 2

    def test_compression_makes_repeated_targets_cheaper(self):
        aux_a = AuxRingBuffer(size=1 << 20)
        encoder_a = PTEncoder(pid=1, aux=aux_a, psb_period=1 << 20)
        for _ in range(100):
            encoder_a.indirect_branch(0x400000)
        encoder_a.flush()

        aux_b = AuxRingBuffer(size=1 << 20)
        encoder_b = PTEncoder(pid=2, aux=aux_b, psb_period=1 << 20)
        for index in range(100):
            encoder_b.indirect_branch(0x400000 + index * 0x1_0000_0000)
        encoder_b.flush()
        assert encoder_a.stats.bytes_emitted < encoder_b.stats.bytes_emitted

    def test_disabled_encoder_records_nothing(self):
        aux = AuxRingBuffer(size=1 << 20)
        encoder = PTEncoder(pid=1, aux=aux)
        encoder.disable()
        encoder.conditional_branch(True)
        encoder.indirect_branch(0x1000)
        assert encoder.stats.conditional_branches == 0
        assert encoder.stats.indirect_branches == 0

    def test_bytes_per_branch_is_realistic(self):
        aux = AuxRingBuffer(size=1 << 22)
        encoder = PTEncoder(pid=1, aux=aux)
        for index in range(10_000):
            encoder.conditional_branch(index % 2 == 0)
        encoder.flush()
        bytes_per_branch = encoder.stats.bytes_emitted / 10_000
        # Long TNT packets: 8 bytes per 47 branches plus PSB overhead.
        assert bytes_per_branch < 1.0

    def test_decoder_lenient_recovers_from_leading_garbage(self):
        aux = AuxRingBuffer(size=1 << 20)
        encoder = PTEncoder(pid=1, aux=aux, psb_period=1 << 20)
        for _ in range(10):
            encoder.conditional_branch(True)
        encoder.flush()
        data = aux.drain()
        mangled = b"\x77\x99" + data[2:]
        trace = PTDecoder().decode_lenient(mangled)
        assert trace.overflow_count >= 1


class TestReconstruction:
    def test_reconstruct_full_branch_sequence(self):
        aux = AuxRingBuffer(size=1 << 20)
        encoder = PTEncoder(pid=1, aux=aux)
        image_map = ImageMap()
        image_map.add_image("workload:test", 0x400000000000, 1 << 32)
        sites = []
        for index in range(50):
            site = 0x400000000000 + index * 16
            if index % 5 == 0:
                encoder.indirect_branch(site)
                image_map.record_branch_site(1, site, True)
                sites.append((site, True))
            else:
                taken = index % 2 == 0
                encoder.conditional_branch(taken)
                image_map.record_branch_site(1, site, False)
                sites.append((site, taken))
        encoder.flush()
        trace = PTDecoder().decode(aux.drain())
        reconstructed = reconstruct_branches(trace, image_map.branch_sites(1), image_map)
        assert len(reconstructed) == 50
        for (site, expectation), branch in zip(sites, reconstructed):
            if branch.is_indirect:
                assert branch.site == site
            else:
                assert branch.taken == expectation

    def test_reconstruction_stops_at_gap(self):
        trace = PTDecoder().decode(TNTPacket((True, False)).encode())
        sites = [(0x1, False), (0x2, False), (0x3, False)]
        reconstructed = reconstruct_branches(trace, sites)
        assert len(reconstructed) == 2

    def test_image_map_lookup(self):
        image_map = ImageMap()
        image_map.add_image("libinspector.so", 0x1000, 0x1000)
        record = image_map.image_for(0x1800)
        assert record is not None and record.name == "libinspector.so"
        assert image_map.image_for(0x5000) is None

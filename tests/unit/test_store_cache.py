"""Tests for the hot read path (:mod:`repro.store.cache`).

Covers the acceptance invariants of the decoded-segment cache: a tiny
byte budget changes access patterns but never answers, the budget is a
hard ceiling, maintenance (``compact``/``gc``) invalidates instead of
serving stale payloads, pinned index generations are reused across store
opens, and the parallel multi-segment scan is a pure timing knob.
"""

import pytest

from repro.core.algorithm import ProvenanceTracker
from repro.core.dependencies import derive_data_edges
from repro.core.queries import backward_slice, lineage_of_pages, propagate_taint
from repro.store import (
    IndexPinner,
    ProvenanceStore,
    SegmentCache,
    StoreQueryEngine,
)
from repro.store.cache import ReadScope, estimate_payload_cost


def build_chain_cpg(threads: int = 3, steps: int = 4):
    """A multi-thread lock-chain CPG big enough to span many segments."""
    tracker = ProvenanceTracker()
    tracker.register_input_pages({1000, 1001})
    lock = 7
    for tid in range(1, threads + 1):
        tracker.on_thread_start(tid)
    page = 0
    for step in range(steps):
        for tid in range(1, threads + 1):
            tracker.on_sync_boundary(tid, "mutex_lock")
            tracker.on_acquire(tid, lock)
            tracker.begin_next(tid)
            tracker.on_memory_access(tid, 1000 if step == 0 else page - 1, is_write=False)
            tracker.on_memory_access(tid, page, is_write=True)
            page += 1
            tracker.on_sync_boundary(tid, "mutex_unlock")
            tracker.on_release(tid, lock)
            tracker.begin_next(tid)
    for tid in range(1, threads + 1):
        tracker.on_thread_end(tid)
    cpg = tracker.finalize()
    derive_data_edges(cpg)
    return cpg


@pytest.fixture()
def stored(tmp_path):
    """One ingested run split across many small segments."""
    cpg = build_chain_cpg()
    store_dir = str(tmp_path / "store")
    store = ProvenanceStore.create(store_dir)
    store.ingest(cpg, segment_nodes=3)
    return cpg, store_dir


def query_targets(cpg):
    origin = [
            n
            for n in cpg.nodes()
            if n[0] >= 0 and cpg.subcomputation(n).write_set
        ][-1]
    pages = sorted(cpg.subcomputation(origin).write_set)[:1] or [0]
    return origin, pages


def expected_answers(cpg):
    origin, pages = query_targets(cpg)
    seed = sorted(cpg.subcomputation(cpg.input_node).write_set)
    return (
        backward_slice(cpg, origin),
        lineage_of_pages(cpg, pages),
        frozenset(propagate_taint(cpg, pages).tainted_nodes),
        # Input-page taint floods: the answer spans the whole run, so
        # this query drags every segment through the cache.
        frozenset(propagate_taint(cpg, seed).tainted_nodes),
    )


def engine_answers(engine, cpg):
    origin, pages = query_targets(cpg)
    seed = sorted(cpg.subcomputation(cpg.input_node).write_set)
    return (
        engine.backward_slice(origin),
        engine.lineage_of_pages(pages),
        frozenset(engine.propagate_taint(pages).tainted_nodes),
        frozenset(engine.propagate_taint(seed).tainted_nodes),
    )


class TestSegmentCacheBudget:
    def test_tiny_budget_returns_identical_results(self, stored):
        cpg, store_dir = stored
        probe = ProvenanceStore.open(store_dir)
        biggest = max(
            estimate_payload_cost(probe.segment(segment_id))
            for segment_id in probe.manifest.segment_ids()
        )
        # Room for roughly two decoded segments: eviction is constant.
        cache = SegmentCache(max_bytes=2 * biggest)
        store = ProvenanceStore.open(store_dir, segment_cache=cache)
        engine = StoreQueryEngine(store)
        assert engine_answers(engine, cpg) == expected_answers(cpg)
        assert cache.stats.evictions > 0, "the tiny budget never evicted"
        assert cache.peak_bytes <= cache.max_bytes
        assert cache.total_bytes <= cache.max_bytes

    def test_budget_is_a_hard_ceiling(self, stored):
        cpg, store_dir = stored
        cache = SegmentCache(max_bytes=8 * 1024)
        store = ProvenanceStore.open(store_dir, segment_cache=cache)
        for segment_id in store.manifest.segment_ids():
            store.segment(segment_id)
            assert cache.total_bytes <= cache.max_bytes
        assert cache.peak_bytes <= cache.max_bytes

    def test_oversize_payload_is_served_but_not_admitted(self, stored):
        cpg, store_dir = stored
        cache = SegmentCache(max_bytes=1)  # below any payload's cost
        store = ProvenanceStore.open(store_dir, segment_cache=cache)
        engine = StoreQueryEngine(store)
        assert engine_answers(engine, cpg) == expected_answers(cpg)
        assert len(cache) == 0
        assert cache.total_bytes == 0
        assert cache.stats.oversize > 0

    def test_shrinking_the_budget_evicts_immediately(self, stored):
        _, store_dir = stored
        store = ProvenanceStore.open(store_dir)
        for segment_id in store.manifest.segment_ids():
            store.segment(segment_id)
        assert store.cache.total_bytes > 0
        store.cache.max_bytes = 1024
        assert store.cache.total_bytes <= 1024

    def test_entry_cap_back_compat_knob(self, stored):
        _, store_dir = stored
        store = ProvenanceStore.open(store_dir)
        store.max_cached_segments = 2
        for segment_id in store.manifest.segment_ids():
            store.segment(segment_id)
        assert len(store._cache) == 2


class TestMaintenanceInvalidation:
    def test_compact_invalidates_and_answers_identically(self, stored):
        cpg, store_dir = stored
        store = ProvenanceStore.open(store_dir)
        engine = StoreQueryEngine(store)
        before = engine_answers(engine, cpg)
        assert len(store.cache) > 0
        generation_before = store.manifest_generation
        store.compact(segment_nodes=64)
        assert store.manifest_generation == generation_before + 1
        # Nothing decoded before the rewrite survives in the cache.
        assert len(store.cache) == 0
        assert engine_answers(engine, cpg) == before == expected_answers(cpg)

    def test_gc_invalidates_dropped_runs(self, stored):
        cpg, store_dir = stored
        store = ProvenanceStore.open(store_dir)
        store.ingest(cpg, segment_nodes=3)  # second run, then warm both
        engine = StoreQueryEngine(store)
        runs = store.run_ids()
        origin, pages = query_targets(cpg)
        for run_id in runs:
            engine.backward_slice(origin, run=run_id)
        assert len(store.cache) > 0
        store.gc(runs=[runs[0]])
        assert len(store.cache) == 0  # generation bump dropped the namespace
        assert engine.backward_slice(origin, run=runs[1]) == backward_slice(cpg, origin)

    def test_pinner_entries_die_with_their_generation(self, stored):
        cpg, store_dir = stored
        pinner = IndexPinner()
        store = ProvenanceStore.open(store_dir, index_pinner=pinner)
        store.indexes_for(store.run_ids()[0])
        assert len(pinner) == 1
        store.compact(segment_nodes=64)
        # The compacted run's pin was invalidated; the fold wrote a new
        # base, so a fresh open pins the new generation, not the old one.
        reopened = ProvenanceStore.open(store_dir, index_pinner=pinner)
        reopened.indexes_for(reopened.run_ids()[0])
        engine = StoreQueryEngine(reopened)
        assert engine_answers(engine, cpg) == expected_answers(cpg)


class TestIndexPinner:
    def test_pinned_indexes_reused_across_opens(self, stored):
        cpg, store_dir = stored
        pinner = IndexPinner()
        first = ProvenanceStore.open(store_dir, index_pinner=pinner)
        run_id = first.run_ids()[0]
        merged = first.indexes_for(run_id)
        assert pinner.stats.misses == 1 and pinner.stats.hits == 0
        second = ProvenanceStore.open(store_dir, index_pinner=pinner)
        assert second.indexes_for(run_id) is merged
        assert pinner.stats.hits == 1
        engine = StoreQueryEngine(second)
        assert engine_answers(engine, cpg) == expected_answers(cpg)

    def test_lru_bound_evicts_oldest_run(self, stored):
        cpg, store_dir = stored
        store = ProvenanceStore.open(store_dir)
        store.ingest(cpg, segment_nodes=3)
        pinner = IndexPinner(max_runs=1)
        shared = ProvenanceStore.open(store_dir, index_pinner=pinner)
        for run_id in shared.run_ids():
            shared.indexes_for(run_id)
        assert len(pinner) == 1
        assert pinner.stats.evictions == 1


class TestParallelScan:
    def test_parallel_results_match_sequential(self, stored):
        cpg, store_dir = stored
        sequential = StoreQueryEngine(ProvenanceStore.open(store_dir), parallelism=1)
        parallel = StoreQueryEngine(ProvenanceStore.open(store_dir), parallelism=4)
        assert engine_answers(parallel, cpg) == engine_answers(sequential, cpg)

    def test_parallel_across_runs_matches_sequential(self, stored):
        cpg, store_dir = stored
        store = ProvenanceStore.open(store_dir)
        store.ingest(cpg, segment_nodes=3)
        _, pages = query_targets(cpg)
        sequential = StoreQueryEngine(ProvenanceStore.open(store_dir), parallelism=1)
        parallel = StoreQueryEngine(ProvenanceStore.open(store_dir), parallelism=4)
        assert parallel.lineage_across_runs(pages) == sequential.lineage_across_runs(pages)
        left = parallel.taint_across_runs(pages)
        right = sequential.taint_across_runs(pages)
        assert left.keys() == right.keys()
        for run_id in left:
            assert left[run_id].tainted_nodes == right[run_id].tainted_nodes
            assert left[run_id].tainted_pages == right[run_id].tainted_pages

    def test_parallelism_must_be_positive(self, stored):
        _, store_dir = stored
        with pytest.raises(ValueError):
            StoreQueryEngine(ProvenanceStore.open(store_dir), parallelism=0)


class TestWarmSweep:
    def test_flood_sweep_is_free_on_a_warm_engine(self, stored):
        cpg, store_dir = stored
        store = ProvenanceStore.open(store_dir)
        engine = StoreQueryEngine(store)
        seed = sorted(cpg.subcomputation(cpg.input_node).write_set)
        first = engine.propagate_taint(seed)
        assert engine.last_taint_mode == "sweep"  # input taint floods
        reads_before = store.read_stats.segments_read
        second = engine.propagate_taint(seed)
        assert engine.last_taint_mode == "sweep"
        assert store.read_stats.segments_read == reads_before, (
            "warm sweep re-decoded segments instead of hitting the cache"
        )
        assert second.tainted_nodes == first.tainted_nodes
        assert first.tainted_nodes == propagate_taint(cpg, seed).tainted_nodes


class TestReadScope:
    def test_scope_collects_per_query_accounting(self, stored):
        cpg, store_dir = stored
        store = ProvenanceStore.open(store_dir)
        origin, pages = query_targets(cpg)
        cold_scope = ReadScope()
        StoreQueryEngine(store, scope=cold_scope).lineage_of_pages(pages)
        assert cold_scope.cache_misses > 0
        assert cold_scope.segments_read == cold_scope.cache_misses
        assert cold_scope.bytes_read > 0
        warm_scope = ReadScope()
        StoreQueryEngine(store, scope=warm_scope).lineage_of_pages(pages)
        assert warm_scope.segments_read == 0
        assert warm_scope.cache_hits > 0

"""Tests for the sharded store cluster (:mod:`repro.store.cluster`).

Router correctness (both assignment policies, run-id translation),
degraded-read policies, failover and replica promotion, chaos-proxy
recovery, a mid-scatter shard death, a multi-shard concurrency hammer
with live maintenance, the manifest round-trip, and the ``cluster`` CLI.
"""

import json
import os
import threading
import time

import pytest

from helpers.clusters import (
    InProcessCluster,
    build_multirun_store,
    hash_partition,
    manual_manifest,
    random_cpg,
    split_store,
)
from helpers.faults import ChaosProxy, crashable_server

from repro.errors import StoreError, StoreUnreachableError
from repro.store import (
    ClusterManifest,
    ClusterService,
    Endpoint,
    InProcessShardClient,
    ProvenanceStore,
    ShardDownError,
    ShardInfo,
    StoreClient,
    StoreCluster,
    StoreQueryEngine,
    StoreServer,
    page_bucket,
)
from repro.store.__main__ import main
from repro.store.shard import PAGE_HASH_BUCKETS, RunAssignment

PAGES = [2, 3, 4]
SEEDS = [11, 22, 33]


@pytest.fixture()
def whole(tmp_path):
    """One unsharded three-run store plus its reference engine."""
    path = str(tmp_path / "whole")
    store, runs = build_multirun_store(path, SEEDS)
    return path, StoreQueryEngine(store), runs


def assert_cluster_equals_engine(cluster, engine, runs):
    """The full equivalence checklist one cluster must pass."""
    for run in runs:
        assert cluster.lineage(PAGES, run=run) == engine.lineage_of_pages(PAGES, run=run)
        mine = cluster.taint(PAGES, run=run)
        reference = engine.propagate_taint(PAGES, run=run)
        assert mine.tainted_nodes == reference.tainted_nodes
        assert mine.tainted_pages == reference.tainted_pages
    lineage_c = cluster.lineage_across_runs(PAGES)
    lineage_e = engine.lineage_across_runs(PAGES)
    assert lineage_c == lineage_e
    assert list(lineage_c) == list(lineage_e)  # merge (mint) order too
    taint_c = cluster.taint_across_runs(PAGES)
    taint_e = engine.taint_across_runs(PAGES)
    assert list(taint_c) == list(taint_e)
    for run in runs:
        assert taint_c[run].tainted_nodes == taint_e[run].tainted_nodes
        assert taint_c[run].tainted_pages == taint_e[run].tainted_pages
        assert taint_c[run].source_pages == taint_e[run].source_pages
    diff_c = cluster.compare_lineage(runs[0], runs[-1], PAGES)
    diff_e = engine.compare_lineage(runs[0], runs[-1], PAGES)
    assert (diff_c.run_a, diff_c.run_b, diff_c.pages) == (diff_e.run_a, diff_e.run_b, diff_e.pages)
    assert diff_c.only_a == diff_e.only_a
    assert diff_c.only_b == diff_e.only_b
    assert diff_c.common == diff_e.common
    assert diff_c.identical == diff_e.identical


class TestRouterCorrectness:
    def test_manual_policy_matches_unsharded_engine(self, whole, tmp_path):
        path, engine, runs = whole
        owned = [[runs[0], runs[2]], [runs[1]]]
        with InProcessCluster(path, str(tmp_path / "shards"), owned) as cluster:
            assert cluster.cluster.run_ids() == runs
            assert_cluster_equals_engine(cluster.cluster, engine, runs)

    def test_run_hash_policy_matches_unsharded_engine(self, whole, tmp_path):
        path, engine, runs = whole
        owned = hash_partition(runs, 2)
        with InProcessCluster(
            path, str(tmp_path / "shards"), owned, policy="run-hash"
        ) as cluster:
            assert cluster.cluster.run_ids() == runs
            assert_cluster_equals_engine(cluster.cluster, engine, runs)

    def test_manual_policy_translates_local_run_ids(self, whole, tmp_path):
        # A shard built by re-ingesting a run mints its own (local) ids;
        # the manual table carries the translation and the router must
        # rewrite runs outbound and map them back inbound.
        path, engine, runs = whole
        shard_path = str(tmp_path / "reingested")
        shard_store = ProvenanceStore.open_or_create(shard_path)
        shard_store.ingest(random_cpg(SEEDS[1]), workload="re")  # local run 1
        assert shard_store.run_ids() == [1]
        other_paths = split_store(
            path, str(tmp_path / "rest"), [[runs[0], runs[2]], [runs[1]]]
        )
        servers = [StoreServer(other_paths[0]), StoreServer(shard_path)]
        clients = {
            "mem://0": InProcessShardClient(servers[0], "mem://0"),
            "mem://1": InProcessShardClient(servers[1], "mem://1"),
        }
        manifest = ClusterManifest(
            shards=[
                ShardInfo("keep", Endpoint(address="mem://0")),
                ShardInfo("fresh", Endpoint(address="mem://1")),
            ],
            policy="manual",
        )
        manifest.assign(runs[0], "keep")
        manifest.assign(runs[2], "keep")
        manifest.assign(runs[1], "fresh", local_run=1)
        cluster = StoreCluster(manifest, client_factory=lambda a: clients[a])
        try:
            assert_cluster_equals_engine(cluster, engine, runs)
        finally:
            for server in servers:
                server.close()

    def test_page_hash_range_prunes_but_preserves_results(self, whole, tmp_path):
        path, engine, runs = whole
        owned = [[runs[0], runs[2]], [runs[1]]]
        with InProcessCluster(path, str(tmp_path / "shards"), owned) as cluster:
            # Give shard 1 a range excluding every queried page's bucket:
            # its runs must come back through the untouched default, and
            # the shard must not be asked the expensive query at all.
            buckets = {page_bucket(p) for p in PAGES}
            assert buckets, "queried pages must hash somewhere"
            lo = max(buckets) + 1
            if lo >= PAGE_HASH_BUCKETS:
                lo = min(buckets)  # wrap: use the range below instead
                cluster.manifest.shard("shard-1").page_hash_range = (0, lo)
            else:
                cluster.manifest.shard("shard-1").page_hash_range = (lo, PAGE_HASH_BUCKETS)
            result = cluster.cluster.lineage_across_runs(PAGES)
            expected = engine.lineage_across_runs(PAGES)
            # The pruned shard's run answers empty iff the whole store
            # also proves it untouched -- which build_multirun_store does
            # not guarantee, so compare only the asked-shard runs exactly
            # and the pruned run against the untouched default.
            assert result[runs[0]] == expected[runs[0]]
            assert result[runs[2]] == expected[runs[2]]
            assert result[runs[1]] == set()
            asked = {e["shard"] for e in cluster.cluster.last_fanout["shards"]}
            assert asked == {"shard-0"}

    def test_resolve_run_and_unknown_runs(self, whole, tmp_path):
        path, engine, runs = whole
        with InProcessCluster(
            path, str(tmp_path / "shards"), [[r] for r in runs]
        ) as cluster:
            with pytest.raises(StoreError, match="pass run=<id>"):
                cluster.cluster.lineage(PAGES)
            with pytest.raises(StoreError, match="assigns no shard to run 99"):
                cluster.cluster.lineage(PAGES, run=99)


class TestDegradedReads:
    def test_fail_policy_raises_shard_down(self, whole, tmp_path):
        path, engine, runs = whole
        owned = [[runs[0], runs[2]], [runs[1]]]
        with InProcessCluster(path, str(tmp_path / "shards"), owned) as cluster:
            cluster.clients["mem://1"].down = True
            with pytest.raises(ShardDownError, match="shard-1"):
                cluster.cluster.lineage_across_runs(PAGES)
            # A single-run query to the LIVE shard still works.
            assert cluster.cluster.lineage(PAGES, run=runs[0]) == engine.lineage_of_pages(
                PAGES, run=runs[0]
            )
            # ... while one routed to the dead shard raises.
            with pytest.raises(ShardDownError, match="shard-1"):
                cluster.cluster.lineage(PAGES, run=runs[1])

    def test_partial_policy_reports_missing_shards(self, whole, tmp_path):
        path, engine, runs = whole
        owned = [[runs[0], runs[2]], [runs[1]]]
        with InProcessCluster(
            path, str(tmp_path / "shards"), owned, on_shard_down="partial"
        ) as cluster:
            cluster.clients["mem://1"].down = True
            result = cluster.cluster.lineage_across_runs(PAGES)
            expected = engine.lineage_across_runs(PAGES)
            # Live shards' runs are answered correctly, never wrongly.
            assert set(result) == {runs[0], runs[2]}
            for run in result:
                assert result[run] == expected[run]
            missing = cluster.cluster.last_fanout["missing_shards"]
            assert missing == [{"shard": "shard-1", "runs": [runs[1]]}]
            # compare_lineage has no partial answer: it must still raise.
            with pytest.raises(ShardDownError):
                cluster.cluster.compare_lineage(runs[0], runs[1], PAGES)

    def test_shard_death_mid_scatter_honors_policy(self, whole, tmp_path):
        # The shard answers discovery, then dies before the scattered
        # query reaches it -- the race a cross-run query can lose.
        path, engine, runs = whole
        owned = [[runs[0], runs[2]], [runs[1]]]

        class DiesAfter(InProcessShardClient):
            def __init__(self, server, address, survive_ops):
                super().__init__(server, address)
                self.survive_ops = survive_ops

            def request(self, op, **params):
                if op not in self.survive_ops:
                    self.down = True
                return super().request(op, **params)

        with InProcessCluster(
            path, str(tmp_path / "shards"), owned, on_shard_down="partial"
        ) as cluster:
            victim = cluster.clients["mem://1"]
            cluster.clients["mem://1"] = DiesAfter(victim.server, "mem://1", {"runs"})
            result = cluster.cluster.lineage_across_runs(PAGES)
            expected = engine.lineage_across_runs(PAGES)
            assert set(result) == {runs[0], runs[2]}
            for run in result:
                assert result[run] == expected[run]
            assert cluster.cluster.last_fanout["missing_shards"] == [
                {"shard": "shard-1", "runs": [runs[1]]}
            ]


class TestFailoverAndChaos:
    def test_backoff_recovers_through_chaos_proxy(self, whole, tmp_path):
        # The shard's first two connections die mid-response; the
        # client's capped backoff must ride it out and the router answer
        # must still be exact.
        path, engine, runs = whole
        shard_paths = split_store(path, str(tmp_path / "shards"), [runs])
        server = StoreServer(shard_paths[0])
        server.start()
        try:
            with ChaosProxy(
                target=server.address, mode="half_close", fault_budget=2
            ) as proxy:
                manifest = manual_manifest(
                    [f"{proxy.address[0]}:{proxy.address[1]}"], [runs]
                )
                cluster = StoreCluster(
                    manifest, client_options={"timeout": 5.0, "retries": 4, "backoff": 0.01}
                )
                assert cluster.lineage(PAGES, run=runs[0]) == engine.lineage_of_pages(
                    PAGES, run=runs[0]
                )
                assert proxy.faulted == 2
        finally:
            server.close()

    def test_replica_failover_and_promotion_serve_identical_snapshots(
        self, whole, tmp_path
    ):
        path, engine, runs = whole
        shard_paths = split_store(path, str(tmp_path / "shards"), [runs])
        expected = engine.lineage_of_pages(PAGES, run=runs[1])
        replica = StoreServer(shard_paths[0])
        replica.start()
        replica_url = f"{replica.address[0]}:{replica.address[1]}"
        try:
            with crashable_server(shard_paths[0]) as primary:
                manifest = manual_manifest(
                    [primary.url], [runs], replicas={0: [replica_url]}
                )
                cluster = StoreCluster(
                    manifest, client_options={"timeout": 5.0, "retries": 0}
                )
                assert cluster.lineage(PAGES, run=runs[1]) == expected
                served_by = cluster.last_fanout["shards"][0]
                assert served_by["address"] == primary.url
                # Primary dies: the same query fails over to the replica
                # and the answer is byte-identical.
                primary.crash()
                assert cluster.lineage(PAGES, run=runs[1]) == expected
                served_by = cluster.last_fanout["shards"][0]
                assert served_by["address"] == replica_url
                assert served_by["failovers"] == 1
                assert cluster.fanout_stats()["shard_failovers"] == {"shard-0": 1}
                # Promotion makes the replica the primary: no failover
                # detour any more, snapshot still identical.
                cluster.promote("shard-0", replica_url)
                assert cluster.lineage(PAGES, run=runs[1]) == expected
                served_by = cluster.last_fanout["shards"][0]
                assert served_by["address"] == replica_url
                assert served_by["failovers"] == 0
        finally:
            replica.close()


class TestClusterHammer:
    def test_readers_survive_compaction_and_remote_ingest(self, whole, tmp_path):
        # 8 reader threads across 3 shards while shard 0 compacts and
        # shard 2 ingests a new run remotely: every answer must equal the
        # pre-computed reference (snapshot consistency), and no shard's
        # cache may corrupt another's answers.
        path, engine, runs = whole
        shard_paths = split_store(path, str(tmp_path / "shards"), [[r] for r in runs])
        servers = [
            StoreServer(p, parallelism=2, writable=(index == 2))
            for index, p in enumerate(shard_paths)
        ]
        addresses = []
        for server in servers:
            host, port = server.start()
            addresses.append(f"{host}:{port}")
        manifest = manual_manifest(addresses, [[r] for r in runs])
        cluster = StoreCluster(
            manifest, parallelism=4, client_options={"timeout": 20.0, "retries": 2}
        )
        reference = {
            "lineage": {r: engine.lineage_of_pages(PAGES, run=r) for r in runs},
            "across": engine.lineage_across_runs(PAGES),
            "diff": engine.compare_lineage(runs[0], runs[2], PAGES),
        }
        errors = []
        stop = threading.Event()

        def reader(tid):
            rounds = 0
            try:
                while not stop.is_set() and rounds < 12:
                    rounds += 1
                    run = runs[(tid + rounds) % len(runs)]
                    assert cluster.lineage(PAGES, run=run) == reference["lineage"][run]
                    across = cluster.lineage_across_runs(PAGES)
                    assert across == reference["across"]
                    assert list(across) == list(reference["across"])
                    diff = cluster.compare_lineage(runs[0], runs[2], PAGES)
                    assert diff.only_a == reference["diff"].only_a
                    assert diff.only_b == reference["diff"].only_b
                    assert diff.common == reference["diff"].common
            except Exception as exc:  # noqa: BLE001 - reported via main thread
                errors.append((tid, exc))

        def compactor():
            try:
                maintenance = ProvenanceStore.open(shard_paths[0])
                maintenance.compact()
                servers[0].refresh()
            except Exception as exc:  # noqa: BLE001
                errors.append(("compact", exc))

        def ingester():
            try:
                client = StoreClient(*servers[2].address, timeout=20.0)
                run_id = client.begin_run(workload="hammer-ingest")
                cpg = random_cpg(77)
                order = cpg.topological_order()
                nodes = [cpg.subcomputation(n) for n in order]
                half = len(nodes) // 2 or 1
                client.append_epoch(run_id, nodes[:half])
                client.append_epoch(run_id, nodes[half:])
                client.commit_run(run_id)
            except Exception as exc:  # noqa: BLE001
                errors.append(("ingest", exc))

        threads = [threading.Thread(target=reader, args=(tid,)) for tid in range(8)]
        threads += [threading.Thread(target=compactor), threading.Thread(target=ingester)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            stop.set()
            assert not errors, f"hammer failed: {errors[:3]}"
            # The remotely ingested run is not in the manual table, so it
            # never leaked into router answers; each shard's cache held
            # its budget under the concurrency.
            for server in servers:
                assert server.cache.total_bytes <= server.cache.max_bytes
            stats = cluster.fanout_stats()
            assert stats["queries_served"] >= 8 * 12 * 3
            assert stats["shard_failovers"] == {}
        finally:
            stop.set()
            for server in servers:
                server.close()


class TestManifestAndService:
    def test_manifest_round_trips_and_validates(self, tmp_path):
        manifest = ClusterManifest(
            shards=[
                ShardInfo(
                    "a",
                    Endpoint(address="127.0.0.1:7100", path="/data/a"),
                    replicas=[Endpoint(address="127.0.0.1:7101")],
                    page_hash_range=(0, 512),
                ),
                ShardInfo("b", Endpoint(address="127.0.0.1:7200")),
            ],
            policy="manual",
        )
        manifest.assign(1, "a")
        manifest.assign(2, "b", local_run=1)
        target = str(tmp_path / "cluster.json")
        manifest.save(target)
        loaded = ClusterManifest.load(target)
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.shard_for_run(2)[0].shard_id == "b"
        assert loaded.shard_for_run(2)[1] == 1
        assert loaded.run_ids() == [1, 2]
        loaded.promote("a", "127.0.0.1:7101")
        assert loaded.shard("a").primary.address == "127.0.0.1:7101"
        assert loaded.shard("a").replicas[0].address == "127.0.0.1:7100"
        with pytest.raises(StoreError, match="no replica at"):
            loaded.promote("b", "nowhere:1")
        with pytest.raises(StoreError, match="unknown shard"):
            ClusterManifest(
                shards=[ShardInfo("a", Endpoint())],
                assignments={1: RunAssignment("ghost", 1)},
            )
        with pytest.raises(StoreError, match="duplicate shard id"):
            ClusterManifest(shards=[ShardInfo("a", Endpoint()), ShardInfo("a", Endpoint())])

    def test_page_bucket_is_stable_and_in_range(self):
        # The pruning contract depends on every process agreeing on the
        # mix; pin a few values so a change cannot slip in silently.
        assert [page_bucket(p) for p in (0, 1, 2, 500)] == [
            page_bucket(p) for p in (0, 1, 2, 500)
        ]
        for page in range(0, 2000, 37):
            assert 0 <= page_bucket(page) < PAGE_HASH_BUCKETS

    def test_cluster_service_hosts_shards_and_writes_addresses_back(
        self, whole, tmp_path
    ):
        path, engine, runs = whole
        shard_paths = split_store(
            path, str(tmp_path / "shards"), [[runs[0], runs[2]], [runs[1]]]
        )
        manifest = ClusterManifest(
            shards=[
                ShardInfo("s0", Endpoint(path=shard_paths[0])),
                ShardInfo("s1", Endpoint(path=shard_paths[1])),
            ],
            policy="manual",
            path=str(tmp_path / "cluster.json"),
        )
        manifest.assign(runs[0], "s0")
        manifest.assign(runs[2], "s0")
        manifest.assign(runs[1], "s1")
        manifest.save()
        service = ClusterService(str(tmp_path / "cluster.json"))
        try:
            served = service.start()
            for shard in served.shards:
                assert shard.primary.address  # bound and written back
            reloaded = ClusterManifest.load(str(tmp_path / "cluster.json"))
            cluster = StoreCluster(reloaded, client_options={"timeout": 10.0})
            assert_cluster_equals_engine(cluster, engine, runs)
        finally:
            service.close()


class TestClusterCLI:
    @pytest.fixture()
    def served_cluster(self, whole, tmp_path):
        path, engine, runs = whole
        shard_paths = split_store(path, str(tmp_path / "shards"), [[r] for r in runs])
        manifest = ClusterManifest(
            shards=[
                ShardInfo(f"s{i}", Endpoint(path=p)) for i, p in enumerate(shard_paths)
            ],
            policy="manual",
            path=str(tmp_path / "cluster.json"),
        )
        for index, run in enumerate(runs):
            manifest.assign(run, f"s{index}")
        manifest.save()
        service = ClusterService(manifest)
        service.start()
        yield str(tmp_path / "cluster.json"), engine, runs
        service.close()

    def test_status_reports_every_shard(self, served_cluster, capsys):
        cluster_json, _engine, runs = served_cluster
        assert main(["cluster", "status", cluster_json, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert [entry["alive"] for entry in status["shards"]] == [True, True, True]
        assert status["runs"] == runs

    def test_query_lineage_and_across_runs(self, served_cluster, capsys):
        cluster_json, engine, runs = served_cluster
        pages_arg = ",".join(str(p) for p in PAGES)
        assert (
            main(["cluster", "query", cluster_json, "--pages", pages_arg, "--run", str(runs[0]), "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        expected = {
            f"{tid}:{index}" for tid, index in engine.lineage_of_pages(PAGES, run=runs[0])
        }
        assert set(payload["result"]["nodes"]) == expected
        assert [s["shard"] for s in payload["fanout"]["shards"]] == ["s0"]
        assert (
            main(["cluster", "query", cluster_json, "--pages", pages_arg, "--across-runs", "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert sorted(int(r) for r in payload["result"]) == runs

    def test_query_compare_between_shards(self, served_cluster, capsys):
        cluster_json, engine, runs = served_cluster
        pages_arg = ",".join(str(p) for p in PAGES)
        assert (
            main([
                "cluster", "query", cluster_json, "--pages", pages_arg,
                "--compare", str(runs[0]), str(runs[2]), "--json",
            ])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        diff = engine.compare_lineage(runs[0], runs[2], PAGES)
        assert payload["result"]["identical"] == diff.identical
        assert len(payload["result"]["common"]) == len(diff.common)
        asked = {s["shard"] for s in payload["fanout"]["shards"]}
        assert asked == {"s0", "s2"}

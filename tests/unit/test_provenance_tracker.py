"""Unit tests for the provenance algorithm, CPG, dependency derivation, queries."""

import pytest

from repro.core.algorithm import ProvenanceTracker
from repro.core.cpg import ConcurrentProvenanceGraph, EdgeKind
from repro.core.dependencies import derive_data_edges, readers_of_pages, writers_of_pages
from repro.core.queries import (
    backward_slice,
    find_racy_pairs,
    forward_slice,
    graph_statistics,
    lineage_of_pages,
    propagate_taint,
    schedule_of,
)
from repro.core.serialization import cpg_from_json, cpg_to_json, serialized_size
from repro.core.thunk import INPUT_NODE, SubComputation
from repro.core.vector_clock import VectorClock
from repro.errors import ProvenanceError


# Node ids of the named sub-computations in the Figure-1 example below.
# Each thread's very first sub-computation (index 0) is the empty stretch
# before its first lock() call, so the critical sections land on index 1+.
T1A = (1, 1)
T1B = (1, 3)
T2A = (2, 1)


def build_lock_example():
    """Replay the paper's Figure 1 example: two threads, one lock, x and y.

    Thread 1 runs sub-computations T1.a and T1.b; thread 2 runs T2.a, and
    the schedule is T1.a -> T2.a -> T1.b.  Pages: x lives on page 100,
    y on page 101, flag on page 102.
    """
    tracker = ProvenanceTracker(keep_event_log=True)
    LOCK = 7

    tracker.on_thread_start(1)
    tracker.on_thread_start(2)

    # T1.a: lock(); x = ++y (reads flag, y; writes x, y); unlock()
    tracker.on_sync_boundary(1, "mutex_lock")
    tracker.on_acquire(1, LOCK, "mutex_lock")
    tracker.begin_next(1)
    tracker.on_memory_access(1, 102, is_write=False)
    tracker.on_branch(1, site=0x1234, taken=True)
    tracker.on_memory_access(1, 101, is_write=False)
    tracker.on_memory_access(1, 101, is_write=True)
    tracker.on_memory_access(1, 100, is_write=True)
    tracker.on_sync_boundary(1, "mutex_unlock")
    tracker.on_release(1, LOCK, "mutex_unlock")
    tracker.begin_next(1)

    # T2.a: lock(); y = 2 * x (reads x, writes y); unlock()
    tracker.on_sync_boundary(2, "mutex_lock")
    tracker.on_acquire(2, LOCK, "mutex_lock")
    tracker.begin_next(2)
    tracker.on_memory_access(2, 100, is_write=False)
    tracker.on_memory_access(2, 101, is_write=True)
    tracker.on_sync_boundary(2, "mutex_unlock")
    tracker.on_release(2, LOCK, "mutex_unlock")
    tracker.begin_next(2)

    # T1.b: lock(); y = y / 2 (reads and writes y); unlock()
    tracker.on_sync_boundary(1, "mutex_lock")
    tracker.on_acquire(1, LOCK, "mutex_lock")
    tracker.begin_next(1)
    tracker.on_memory_access(1, 101, is_write=False)
    tracker.on_memory_access(1, 101, is_write=True)

    tracker.on_thread_end(1)
    tracker.on_thread_end(2)
    cpg = tracker.finalize()
    derive_data_edges(cpg)
    return tracker, cpg


class TestTrackerBasics:
    def test_thread_cannot_start_twice(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        with pytest.raises(ProvenanceError):
            tracker.on_thread_start(1)

    def test_memory_access_requires_started_thread(self):
        tracker = ProvenanceTracker()
        with pytest.raises(ProvenanceError):
            tracker.on_memory_access(3, 1, is_write=False)

    def test_begin_next_requires_closed_subcomputation(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        with pytest.raises(ProvenanceError):
            tracker.begin_next(1)

    def test_read_and_write_sets_recorded(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_memory_access(1, 10, is_write=False)
        tracker.on_memory_access(1, 11, is_write=True)
        current = tracker.current_subcomputation(1)
        assert current.read_set == {10}
        assert current.write_set == {11}

    def test_branches_create_thunks(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_branch(1, site=0x10, taken=True)
        tracker.on_branch(1, site=0x20, taken=False)
        current = tracker.current_subcomputation(1)
        assert current.branch_count == 2
        assert [t.start_branch.taken for t in current.thunks if t.start_branch] == [True, False]

    def test_finalize_closes_open_subcomputations(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_memory_access(1, 5, is_write=True)
        cpg = tracker.finalize()
        assert (1, 0) in cpg.nodes()

    def test_sync_boundary_increments_alpha(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_sync_boundary(1, "mutex_lock")
        tracker.on_acquire(1, 3)
        tracker.begin_next(1)
        assert tracker.current_subcomputation(1).index == 1

    def test_thread_clock_tracks_alpha(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        for expected_alpha in range(1, 4):
            tracker.on_sync_boundary(1, "op")
            tracker.begin_next(1)
            # The stored component is alpha + 1 (see _begin_subcomputation).
            assert tracker.thread_clock(1).get(1) == expected_alpha + 1

    def test_release_updates_sync_clock(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_sync_boundary(1, "unlock")
        tracker.on_release(1, 42)
        tracker.begin_next(1)
        # Clock component of the released sub-computation (alpha = 0 -> 1).
        assert tracker.sync_clock(42).get(1) == 1

        tracker.on_sync_boundary(1, "unlock")
        tracker.on_release(1, 42)
        tracker.begin_next(1)
        assert tracker.sync_clock(42).get(1) == 2

    def test_acquire_merges_sync_clock_into_thread_clock(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_thread_start(2)
        tracker.on_sync_boundary(1, "unlock")
        tracker.on_release(1, 9)
        tracker.begin_next(1)
        tracker.on_sync_boundary(2, "lock")
        tracker.on_acquire(2, 9)
        tracker.begin_next(2)
        assert tracker.thread_clock(2).get(1) == tracker.sync_clock(9).get(1)

    def test_event_log_records_order(self):
        tracker, _ = build_lock_example()
        log = tracker.event_log
        assert log is not None
        assert len(log) > 0
        sequences = [event.sequence for event in log.events]
        assert sequences == sorted(sequences)

    def test_stats_counters(self):
        tracker, _ = build_lock_example()
        assert tracker.stats.threads == 2
        assert tracker.stats.subcomputations >= 3
        assert tracker.stats.sync_acquires >= 3
        assert tracker.stats.sync_releases >= 2


class TestFigureOneExample:
    def test_named_subcomputations_present(self):
        _, cpg = build_lock_example()
        assert T1A in cpg.nodes()
        assert T2A in cpg.nodes()
        assert T1B in cpg.nodes()

    def test_control_edges_follow_program_order(self):
        _, cpg = build_lock_example()
        assert (1, 1) in cpg.successors((1, 0), EdgeKind.CONTROL)
        assert (1, 2) in cpg.successors(T1A, EdgeKind.CONTROL)

    def test_sync_edge_from_release_to_acquire(self):
        _, cpg = build_lock_example()
        sync_edges = {(s, t) for s, t, _ in cpg.edges(EdgeKind.SYNC)}
        assert (T1A, T2A) in sync_edges
        assert (T2A, T1B) in sync_edges

    def test_happens_before_chain(self):
        _, cpg = build_lock_example()
        assert cpg.happens_before(T1A, T2A)
        assert cpg.happens_before(T2A, T1B)
        assert cpg.happens_before(T1A, T1B)
        assert not cpg.happens_before(T1B, T1A)

    def test_data_edges_track_update_use(self):
        _, cpg = build_lock_example()
        data_edges = {(s, t) for s, t, _ in cpg.edges(EdgeKind.DATA)}
        # T2.a reads x (page 100) written by T1.a; T1.b reads y (page 101)
        # most recently written by T2.a.
        assert (T1A, T2A) in data_edges
        assert (T2A, T1B) in data_edges

    def test_closer_writer_shadows_farther_writer(self):
        _, cpg = build_lock_example()
        # y (page 101) read by T1.b must come from T2.a, not from T1.a which
        # also wrote it but is superseded.
        pages_from_t1a = [
            attrs.get("pages", frozenset())
            for s, t, attrs in cpg.edges(EdgeKind.DATA)
            if s == T1A and t == T1B
        ]
        for pages in pages_from_t1a:
            assert 101 not in pages

    def test_cpg_is_acyclic(self):
        _, cpg = build_lock_example()
        assert cpg.is_acyclic()

    def test_schedule_respects_partial_order(self):
        _, cpg = build_lock_example()
        order = schedule_of(cpg)
        assert order.index(T1A) < order.index(T2A) < order.index(T1B)

    def test_no_races_in_well_locked_program(self):
        _, cpg = build_lock_example()
        assert find_racy_pairs(cpg) == []

    def test_statistics(self):
        _, cpg = build_lock_example()
        stats = graph_statistics(cpg)
        assert stats["threads"] == 2
        assert stats["data_edges"] >= 2
        assert stats["branches"] >= 1


class TestCPGStructure:
    def test_duplicate_node_rejected(self):
        cpg = ConcurrentProvenanceGraph()
        cpg.add_subcomputation(SubComputation(tid=1, index=0))
        with pytest.raises(ProvenanceError):
            cpg.add_subcomputation(SubComputation(tid=1, index=0))

    def test_control_edge_across_threads_rejected(self):
        cpg = ConcurrentProvenanceGraph()
        cpg.add_subcomputation(SubComputation(tid=1, index=0))
        cpg.add_subcomputation(SubComputation(tid=2, index=0))
        with pytest.raises(ProvenanceError):
            cpg.add_control_edge((1, 0), (2, 0))

    def test_edge_requires_existing_nodes(self):
        cpg = ConcurrentProvenanceGraph()
        cpg.add_subcomputation(SubComputation(tid=1, index=0))
        with pytest.raises(ProvenanceError):
            cpg.add_sync_edge((1, 0), (9, 9), object_id=1)

    def test_thread_nodes_sorted(self):
        cpg = ConcurrentProvenanceGraph()
        for index in (2, 0, 1):
            cpg.add_subcomputation(SubComputation(tid=4, index=index))
        assert cpg.thread_nodes(4) == [(4, 0), (4, 1), (4, 2)]

    def test_summary_counts(self):
        _, cpg = build_lock_example()
        summary = cpg.summary()
        assert summary["nodes"] == len(cpg.nodes())
        assert summary["sync_edges"] == cpg.edge_count(EdgeKind.SYNC)


class TestDataDependencyDerivation:
    def test_input_node_feeds_first_reader(self):
        tracker = ProvenanceTracker()
        tracker.register_input_pages({500, 501})
        tracker.on_thread_start(1)
        tracker.on_memory_access(1, 500, is_write=False)
        cpg = tracker.finalize()
        derive_data_edges(cpg)
        assert cpg.input_node == INPUT_NODE
        data_edges = {(s, t) for s, t, _ in cpg.edges(EdgeKind.DATA)}
        assert (INPUT_NODE, (1, 0)) in data_edges

    def test_no_edge_without_happens_before(self):
        # Two concurrent threads touch the same page without synchronizing:
        # no data edge may be derived between them.
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_thread_start(2)
        tracker.on_memory_access(1, 7, is_write=True)
        tracker.on_memory_access(2, 7, is_write=False)
        cpg = tracker.finalize()
        derive_data_edges(cpg)
        assert cpg.edge_count(EdgeKind.DATA) == 0

    def test_readers_and_writers_of_pages(self):
        _, cpg = build_lock_example()
        assert T2A in readers_of_pages(cpg, [100])
        assert T1A in writers_of_pages(cpg, [100])

    def test_derive_is_idempotent_on_edge_count(self):
        tracker, cpg = build_lock_example()
        before = cpg.edge_count(EdgeKind.DATA)
        # Deriving again adds duplicate edges (MultiDiGraph), so callers run
        # it exactly once; this documents the contract.
        assert before >= 2


class TestQueries:
    def test_backward_slice_reaches_source(self):
        _, cpg = build_lock_example()
        slice_nodes = backward_slice(cpg, T1B, kinds=(EdgeKind.DATA,))
        assert T2A in slice_nodes
        assert T1A in slice_nodes

    def test_forward_slice_reaches_sink(self):
        _, cpg = build_lock_example()
        slice_nodes = forward_slice(cpg, T1A, kinds=(EdgeKind.DATA,))
        assert T2A in slice_nodes
        assert T1B in slice_nodes

    def test_lineage_of_pages(self):
        _, cpg = build_lock_example()
        lineage = lineage_of_pages(cpg, [101])
        assert T1A in lineage
        assert T2A in lineage

    def test_taint_propagation(self):
        _, cpg = build_lock_example()
        result = propagate_taint(cpg, source_pages=[100])
        assert result.is_node_tainted(T2A)
        assert result.is_page_tainted(101)

    def test_taint_does_not_flow_backwards_into_writer(self):
        _, cpg = build_lock_example()
        result = propagate_taint(cpg, source_pages=[100])
        # T1.a writes x (page 100) but never reads it, so it is not tainted;
        # the consumers T2.a and T1.b are.
        assert T1A not in result.tainted_nodes
        assert T2A in result.tainted_nodes
        assert T1B in result.tainted_nodes

    def test_races_detected_for_unsynchronized_conflict(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_thread_start(2)
        tracker.on_memory_access(1, 7, is_write=True)
        tracker.on_memory_access(2, 7, is_write=True)
        cpg = tracker.finalize()
        racy = find_racy_pairs(cpg)
        assert len(racy) == 1
        assert racy[0][2] == frozenset({7})


class TestSerialization:
    def test_round_trip_preserves_structure(self):
        _, cpg = build_lock_example()
        clone = cpg_from_json(cpg_to_json(cpg))
        assert clone.nodes() == cpg.nodes()
        assert clone.summary() == cpg.summary()

    def test_round_trip_preserves_read_write_sets(self):
        _, cpg = build_lock_example()
        clone = cpg_from_json(cpg_to_json(cpg))
        for node_id in cpg.nodes():
            assert clone.subcomputation(node_id).read_set == cpg.subcomputation(node_id).read_set
            assert clone.subcomputation(node_id).write_set == cpg.subcomputation(node_id).write_set

    def test_round_trip_preserves_clocks(self):
        _, cpg = build_lock_example()
        clone = cpg_from_json(cpg_to_json(cpg))
        for node_id in cpg.nodes():
            assert clone.subcomputation(node_id).clock == cpg.subcomputation(node_id).clock

    def test_round_trip_preserves_thunks(self):
        _, cpg = build_lock_example()
        clone = cpg_from_json(cpg_to_json(cpg))
        original = cpg.subcomputation((1, 0))
        copy = clone.subcomputation((1, 0))
        assert copy.branch_count == original.branch_count

    def test_serialized_size_positive_and_monotonic(self):
        _, cpg = build_lock_example()
        all_size = serialized_size(cpg)
        partial = serialized_size(cpg, nodes=[(1, 0)])
        assert 0 < partial < all_size

    def test_unsupported_version_rejected(self):
        with pytest.raises(ProvenanceError):
            from repro.core.serialization import cpg_from_dict

            cpg_from_dict({"format_version": 99, "nodes": [], "edges": []})

    def test_write_and_read_file(self, tmp_path):
        from repro.core.serialization import read_cpg, write_cpg

        _, cpg = build_lock_example()
        path = tmp_path / "cpg.json"
        write_cpg(cpg, str(path))
        clone = read_cpg(str(path))
        assert clone.nodes() == cpg.nodes()


class TestVectorClockIntegrationWithCPG:
    def test_clock_of_later_subcomputation_dominates(self):
        _, cpg = build_lock_example()
        first = cpg.subcomputation((1, 0)).clock
        later = cpg.subcomputation((1, 1)).clock
        assert first.dominated_by(later)

    def test_concurrent_subcomputations_have_incomparable_clocks(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_thread_start(2)
        tracker.on_sync_boundary(1, "op")
        tracker.begin_next(1)
        tracker.on_sync_boundary(2, "op")
        tracker.begin_next(2)
        cpg = tracker.finalize()
        a = cpg.subcomputation((1, 1)).clock
        b = cpg.subcomputation((2, 1)).clock
        assert a.concurrent_with(b)

    def test_explicit_clock_values_match_paper_scheme(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        # First sub-computation (alpha = 0) carries component 1.
        assert tracker.current_subcomputation(1).clock == VectorClock({1: 1})
        tracker.on_sync_boundary(1, "op")
        tracker.begin_next(1)
        assert tracker.current_subcomputation(1).clock.get(1) == 2

"""The docs link checker: the repo's docs must pass, and breakage must fail.

CI runs ``tools/check_docs_links.py`` as its docs job; running it here too
means a broken relative link fails the tier-1 gate before it ever reaches
CI.
"""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "check_docs_links", REPO_ROOT / "tools" / "check_docs_links.py"
)
check_docs_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs_links)


class TestRepoDocs:
    def test_repo_docs_have_no_broken_links(self):
        errors = []
        for path in check_docs_links.docs_files(REPO_ROOT):
            errors.extend(check_docs_links.check_file(path))
        assert errors == []

    def test_readme_and_docs_are_covered(self):
        covered = {path.name for path in check_docs_links.docs_files(REPO_ROOT)}
        assert "README.md" in covered
        assert "store.md" in covered
        assert "architecture.md" in covered


class TestCheckerCatchesBreakage:
    def test_missing_file_target_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [other](missing.md) for details\n")
        errors = check_docs_links.check_file(page)
        assert len(errors) == 1 and "missing.md" in errors[0]

    def test_missing_heading_anchor_reported(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Real Heading\n\nbody\n")
        page = tmp_path / "page.md"
        page.write_text("see [other](other.md#no-such-heading)\n")
        errors = check_docs_links.check_file(page)
        assert len(errors) == 1 and "no-such-heading" in errors[0]

    def test_valid_anchor_and_external_links_pass(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("## Benchmarks ↔ paper figures\n")
        page = tmp_path / "page.md"
        page.write_text(
            "[ok](other.md#benchmarks--paper-figures) and [ext](https://example.com/x)\n"
        )
        assert check_docs_links.check_file(page) == []

    def test_links_inside_code_fences_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```\n[not a link](nowhere.md)\n```\n")
        assert check_docs_links.check_file(page) == []

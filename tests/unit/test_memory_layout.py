"""Unit tests for address-space layout helpers."""

from repro.memory.layout import (
    DEFAULT_PAGE_SIZE,
    Region,
    cache_line_id,
    default_regions,
    page_base,
    page_id,
    page_offset,
    pages_spanned,
)


class TestRegion:
    def test_contains_inside(self):
        region = Region("r", base=0x1000, size=0x100)
        assert region.contains(0x1000)
        assert region.contains(0x10FF)

    def test_contains_outside(self):
        region = Region("r", base=0x1000, size=0x100)
        assert not region.contains(0xFFF)
        assert not region.contains(0x1100)

    def test_end(self):
        region = Region("r", base=0x1000, size=0x100)
        assert region.end == 0x1100

    def test_default_regions_names(self):
        names = {r.name for r in default_regions()}
        assert names == {"globals", "heap", "input", "stack"}

    def test_default_regions_do_not_overlap(self):
        regions = sorted(default_regions(), key=lambda r: r.base)
        for earlier, later in zip(regions, regions[1:]):
            assert earlier.end <= later.base

    def test_stack_is_untracked(self):
        stack = next(r for r in default_regions() if r.name == "stack")
        assert not stack.tracked
        assert not stack.shared

    def test_heap_and_globals_are_tracked_and_shared(self):
        for name in ("heap", "globals"):
            region = next(r for r in default_regions() if r.name == name)
            assert region.tracked
            assert region.shared


class TestPageMath:
    def test_page_id_of_zero(self):
        assert page_id(0) == 0

    def test_page_id_boundary(self):
        assert page_id(DEFAULT_PAGE_SIZE - 1) == 0
        assert page_id(DEFAULT_PAGE_SIZE) == 1

    def test_page_base(self):
        assert page_base(DEFAULT_PAGE_SIZE + 17) == DEFAULT_PAGE_SIZE

    def test_page_offset(self):
        assert page_offset(DEFAULT_PAGE_SIZE + 17) == 17

    def test_custom_page_size(self):
        assert page_id(255, page_size=256) == 0
        assert page_id(256, page_size=256) == 1

    def test_pages_spanned_single_page(self):
        assert pages_spanned(0, 8) == [0]

    def test_pages_spanned_two_pages(self):
        assert pages_spanned(DEFAULT_PAGE_SIZE - 4, 8) == [0, 1]

    def test_pages_spanned_exact_page(self):
        assert pages_spanned(0, DEFAULT_PAGE_SIZE) == [0]

    def test_pages_spanned_large_access(self):
        assert pages_spanned(0, DEFAULT_PAGE_SIZE * 3) == [0, 1, 2]

    def test_pages_spanned_zero_size(self):
        assert pages_spanned(100, 0) == []

    def test_cache_line_id(self):
        assert cache_line_id(0) == 0
        assert cache_line_id(63) == 0
        assert cache_line_id(64) == 1

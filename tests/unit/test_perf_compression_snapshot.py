"""Unit tests for the perf layer, the LZ compressor, and the snapshot facility."""

import json

import pytest

from repro.compression.lz import compress, compression_ratio, decompress
from repro.core.algorithm import ProvenanceTracker
from repro.perf.events import PerfData, PerfRecord, RecordType
from repro.perf.record import PerfRecordSession
from repro.perf.script import PerfScript
from repro.pt.binary_map import ImageMap
from repro.pt.cgroup import Cgroup
from repro.pt.pmu import IntelPTPMU, PMUConfig
from repro.snapshot.consistent_cut import cut_at, frontier_of, is_consistent, latest_cut, violations
from repro.snapshot.ring_buffer import SlotRingBuffer
from repro.snapshot.snapshotter import Snapshotter
from repro.errors import SnapshotError


class TestCgroup:
    def test_membership(self):
        cgroup = Cgroup("inspector")
        cgroup.add(1)
        assert 1 in cgroup
        assert 2 not in cgroup

    def test_children_inherit_membership(self):
        cgroup = Cgroup("inspector")
        cgroup.add(1)
        assert cgroup.add_child(1, 2)
        assert 2 in cgroup

    def test_children_of_non_members_stay_out(self):
        cgroup = Cgroup("inspector")
        assert not cgroup.add_child(5, 6)
        assert 6 not in cgroup


class TestPMU:
    def test_attach_creates_encoder_and_buffer(self):
        pmu = IntelPTPMU()
        encoder = pmu.attach(1)
        assert encoder is not None
        assert pmu.aux_buffer(1) is encoder.aux

    def test_attach_is_idempotent(self):
        pmu = IntelPTPMU()
        assert pmu.attach(1) is pmu.attach(1)

    def test_cgroup_filter_blocks_non_members(self):
        cgroup = Cgroup("inspector")
        cgroup.add(1)
        pmu = IntelPTPMU(cgroup=cgroup)
        assert pmu.attach(1) is not None
        assert pmu.attach(2) is None

    def test_totals_aggregate_over_processes(self):
        pmu = IntelPTPMU(PMUConfig(psb_period=1 << 20))
        for pid in (1, 2):
            encoder = pmu.attach(pid)
            for _ in range(10):
                encoder.conditional_branch(True)
        pmu.flush_all()
        assert pmu.total_branches() == 20
        assert pmu.total_bytes_emitted() > 0

    def test_detach_stops_tracing(self):
        pmu = IntelPTPMU()
        encoder = pmu.attach(1)
        pmu.detach(1)
        encoder.conditional_branch(True)
        assert encoder.stats.conditional_branches == 0


class TestPerfRecordAndScript:
    def _traced_pmu(self):
        pmu = IntelPTPMU(PMUConfig(psb_period=1 << 20))
        image_map = ImageMap()
        session = PerfRecordSession(pmu, image_map, command="workload")
        session.on_process_start(1, "worker-1")
        session.on_mmap(1, "workload:test", 0x400000000000, 1 << 32)
        encoder = pmu.attach(1)
        for index in range(20):
            site = 0x400000000000 + index * 8
            encoder.conditional_branch(index % 2 == 0)
            image_map.record_branch_site(1, site, False)
        return pmu, image_map, session

    def test_record_collects_aux_data(self):
        _, _, session = self._traced_pmu()
        data = session.finish()
        assert data.aux_bytes(1) > 0
        assert data.records_of(RecordType.AUXTRACE)

    def test_record_emits_sideband_records(self):
        _, _, session = self._traced_pmu()
        data = session.finish()
        assert data.records_of(RecordType.COMM)
        assert data.records_of(RecordType.MMAP)
        assert data.records_of(RecordType.ITRACE_START)

    def test_lost_records_on_overflow(self):
        pmu = IntelPTPMU(PMUConfig(aux_size=64, psb_period=1 << 20))
        session = PerfRecordSession(pmu)
        session.on_process_start(1, "w")
        encoder = pmu.attach(1)
        for _ in range(5000):
            encoder.indirect_branch(0x1234567890AB)
        data = session.finish()
        assert data.records_of(RecordType.LOST)

    def test_total_size_includes_framing(self):
        _, _, session = self._traced_pmu()
        data = session.finish()
        assert data.total_size > data.aux_bytes()

    def test_script_decodes_branches(self):
        pmu, image_map, session = self._traced_pmu()
        data = session.finish()
        output = PerfScript(image_map).run(data)
        assert output.total_branches == 20
        assert 1 in output.branches
        assert len(output.branches[1]) == 20
        assert output.lines

    def test_script_counts_lost_events(self):
        data = PerfData()
        data.add_record(PerfRecord(RecordType.LOST, pid=1, payload_size=8))
        output = PerfScript().run(data)
        assert output.lost_events == 1


class TestLZCompression:
    def test_round_trip_text(self):
        payload = b"the quick brown fox jumps over the lazy dog " * 50
        assert decompress(compress(payload)) == payload

    def test_round_trip_binary(self):
        payload = bytes(range(256)) * 20
        assert decompress(compress(payload)) == payload

    def test_round_trip_incompressible(self):
        import random

        rng = random.Random(7)
        payload = bytes(rng.randrange(256) for _ in range(4096))
        assert decompress(compress(payload)) == payload

    def test_empty_input(self):
        assert compress(b"") == b""
        assert decompress(b"") == b""

    def test_repetitive_data_compresses_well(self):
        payload = b"\xAA" * 10_000
        result = compression_ratio(payload)
        assert result.ratio > 10

    def test_random_data_does_not_explode(self):
        import random

        rng = random.Random(3)
        payload = bytes(rng.randrange(256) for _ in range(8192))
        result = compression_ratio(payload)
        assert result.compressed_size < len(payload) * 2.1

    def test_sampled_ratio_close_to_full_ratio(self):
        payload = (b"pattern-one " * 100 + b"pattern-two " * 100) * 20
        full = compression_ratio(payload)
        sampled = compression_ratio(payload, sample_limit=1024)
        assert sampled.sampled
        assert sampled.ratio == pytest.approx(full.ratio, rel=0.5)

    def test_malformed_stream_rejected(self):
        with pytest.raises(ValueError):
            decompress(b"\x05\x00ab")  # claims 5 literals, provides 2
        with pytest.raises(ValueError):
            decompress(b"\x00\x05\xff\xff")  # match offset beyond output


def _tracker_with_two_threads(sync_ops=8):
    tracker = ProvenanceTracker()
    tracker.on_thread_start(1)
    tracker.on_thread_start(2)
    for index in range(sync_ops):
        tid = 1 if index % 2 == 0 else 2
        tracker.on_memory_access(tid, 100 + index, is_write=True)
        tracker.on_sync_boundary(tid, "mutex_unlock")
        tracker.on_release(tid, 5)
        tracker.begin_next(tid)
        other = 2 if tid == 1 else 1
        tracker.on_sync_boundary(other, "mutex_lock")
        tracker.on_acquire(other, 5)
        tracker.begin_next(other)
    return tracker


class TestConsistentCut:
    def test_latest_cut_includes_all_completed_nodes(self):
        tracker = _tracker_with_two_threads()
        cut = latest_cut(tracker.cpg)
        assert len(cut) == len(tracker.cpg.nodes())

    def test_latest_cut_is_consistent(self):
        tracker = _tracker_with_two_threads()
        cut = latest_cut(tracker.cpg)
        assert is_consistent(tracker.cpg, cut.nodes)
        assert violations(tracker.cpg, cut.nodes) == []

    def test_cut_at_partial_frontier_is_consistent(self):
        tracker = _tracker_with_two_threads()
        cpg = tracker.cpg
        # A frontier covering only thread 1's first few sub-computations.
        from repro.core.vector_clock import VectorClock

        frontier = VectorClock({1: 2})
        cut = cut_at(cpg, frontier)
        assert is_consistent(cpg, cut.nodes)
        assert 0 < len(cut) < len(cpg.nodes())

    def test_dropping_a_release_breaks_consistency(self):
        tracker = _tracker_with_two_threads()
        cpg = tracker.cpg
        cut = latest_cut(cpg)
        # Remove a node that has outgoing sync/control edges into the cut.
        from repro.core.cpg import EdgeKind

        source, target, _ = cpg.edges(EdgeKind.SYNC)[0]
        broken = set(cut.nodes)
        broken.discard(source)
        assert not is_consistent(cpg, broken)

    def test_frontier_covers_every_thread(self):
        tracker = _tracker_with_two_threads()
        frontier = frontier_of(tracker.cpg)
        assert frontier.get(1) > 0
        assert frontier.get(2) > 0


class TestRingBufferAndSnapshotter:
    def test_store_and_latest(self):
        ring = SlotRingBuffer(slot_size=1024, slot_count=2)
        ring.store(b"one")
        slot = ring.store(b"two")
        assert ring.latest() is slot
        assert ring.latest().payload == b"two"

    def test_eviction_when_full(self):
        ring = SlotRingBuffer(slot_size=1024, slot_count=2)
        ring.store(b"a")
        ring.store(b"b")
        ring.store(b"c")
        assert ring.evictions == 1
        payloads = [slot.payload for slot in ring.occupied_slots()]
        assert b"a" not in payloads

    def test_oversized_payload_rejected(self):
        ring = SlotRingBuffer(slot_size=4, slot_count=2)
        assert ring.store(b"too large") is None
        assert ring.oversized_rejections == 1

    def test_release_frees_slot(self):
        ring = SlotRingBuffer(slot_size=64, slot_count=2)
        slot = ring.store(b"payload")
        ring.release(slot)
        assert not slot.occupied
        assert ring.used_bytes == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SnapshotError):
            SlotRingBuffer(slot_size=0, slot_count=1)

    def test_snapshotter_interval(self):
        tracker = _tracker_with_two_threads()
        snapshotter = Snapshotter(tracker, SlotRingBuffer(slot_size=1 << 20, slot_count=4), interval=3)
        taken = [snapshotter.on_sync_boundary() for _ in range(9)]
        assert sum(1 for record in taken if record is not None) == 3
        assert snapshotter.stats.snapshots_taken == 3

    def test_snapshots_are_consistent_and_parseable(self):
        tracker = _tracker_with_two_threads()
        snapshotter = Snapshotter(tracker, SlotRingBuffer(slot_size=1 << 20, slot_count=4), interval=1)
        record = snapshotter.on_sync_boundary()
        assert record is not None
        assert record.consistent
        payload = json.loads(snapshotter.ring.latest().payload)
        assert payload["nodes"]
        assert "frontier" in payload

    def test_snapshot_rejected_when_slot_too_small(self):
        tracker = _tracker_with_two_threads()
        snapshotter = Snapshotter(tracker, SlotRingBuffer(slot_size=16, slot_count=2), interval=1)
        record = snapshotter.take_snapshot()
        assert not record.stored

    def test_invalid_interval_rejected(self):
        tracker = ProvenanceTracker()
        with pytest.raises(ValueError):
            Snapshotter(tracker, interval=0)

"""Unit tests for the shared address space and the heap allocator."""

import pytest

from repro.errors import AllocationError, DoubleFreeError, InvalidAddressError
from repro.memory.address_space import SharedAddressSpace
from repro.memory.allocator import HeapAllocator
from repro.memory.layout import HEAP_BASE, INPUT_BASE


@pytest.fixture
def space():
    return SharedAddressSpace(page_size=256)


class TestSharedAddressSpace:
    def test_read_back_what_was_written(self, space):
        space.write(HEAP_BASE, b"hello world")
        assert space.read(HEAP_BASE, 11) == b"hello world"

    def test_unwritten_memory_is_zero(self, space):
        assert space.read(HEAP_BASE, 16) == bytes(16)

    def test_write_across_page_boundary(self, space):
        address = HEAP_BASE + 256 - 4
        payload = b"0123456789"
        space.write(address, payload)
        assert space.read(address, len(payload)) == payload

    def test_word_round_trip(self, space):
        space.write_word(HEAP_BASE, -123456789)
        assert space.read_word(HEAP_BASE) == -123456789

    def test_double_round_trip(self, space):
        space.write_double(HEAP_BASE, 3.14159)
        assert space.read_double(HEAP_BASE) == pytest.approx(3.14159)

    def test_unmapped_address_raises(self, space):
        with pytest.raises(InvalidAddressError):
            space.read(0x1, 8)

    def test_region_of(self, space):
        assert space.region_of(HEAP_BASE).name == "heap"

    def test_region_named_missing(self, space):
        with pytest.raises(InvalidAddressError):
            space.region_named("does-not-exist")

    def test_access_past_region_end_raises(self, space):
        heap = space.region_named("heap")
        with pytest.raises(InvalidAddressError):
            space.read(heap.end - 4, 8)

    def test_is_tracked(self, space):
        assert space.is_tracked(HEAP_BASE)
        stack = space.region_named("stack")
        assert not space.is_tracked(stack.base)

    def test_load_input_places_data_in_input_region(self, space):
        base = space.load_input(b"abcdef")
        assert base == INPUT_BASE
        assert space.read(base, 6) == b"abcdef"

    def test_pages_for_validates_and_returns_pages(self, space):
        pages = space.pages_for(HEAP_BASE, 512)
        assert len(pages) >= 2

    def test_page_snapshot_is_immutable_copy(self, space):
        space.write(HEAP_BASE, b"xyz")
        page = space.pages_for(HEAP_BASE, 1)[0]
        snap = space.page_snapshot(page)
        space.write(HEAP_BASE, b"abc")
        assert snap[:3] == b"xyz"


class TestHeapAllocator:
    def test_malloc_returns_heap_addresses(self, space):
        allocator = HeapAllocator(space)
        address = allocator.malloc(100)
        assert space.region_of(address).name == "heap"

    def test_allocations_do_not_overlap(self, space):
        allocator = HeapAllocator(space)
        first = allocator.malloc(64)
        second = allocator.malloc(64)
        assert abs(first - second) >= 64

    def test_alignment(self, space):
        allocator = HeapAllocator(space, alignment=16)
        for _ in range(5):
            assert allocator.malloc(7) % 16 == 0

    def test_free_and_reuse(self, space):
        allocator = HeapAllocator(space)
        first = allocator.malloc(128)
        allocator.free(first)
        second = allocator.malloc(128)
        assert second == first

    def test_double_free_raises(self, space):
        allocator = HeapAllocator(space)
        address = allocator.malloc(32)
        allocator.free(address)
        with pytest.raises(DoubleFreeError):
            allocator.free(address)

    def test_free_unallocated_raises(self, space):
        allocator = HeapAllocator(space)
        with pytest.raises(DoubleFreeError):
            allocator.free(HEAP_BASE + 12345)

    def test_zero_size_malloc_raises(self, space):
        allocator = HeapAllocator(space)
        with pytest.raises(AllocationError):
            allocator.malloc(0)

    def test_calloc_zeroes_memory(self, space):
        allocator = HeapAllocator(space)
        space.write(HEAP_BASE, b"\xff" * 64)
        address = allocator.calloc(8, 8)
        assert space.read(address, 64) == bytes(64)

    def test_out_of_memory(self):
        small = SharedAddressSpace(page_size=256)
        allocator = HeapAllocator(small)
        heap = small.region_named("heap")
        with pytest.raises(AllocationError):
            allocator.malloc(heap.size + 1)

    def test_stats_track_live_bytes(self, space):
        allocator = HeapAllocator(space)
        a = allocator.malloc(100)
        b = allocator.malloc(100)
        assert allocator.stats.live_bytes >= 200
        allocator.free(a)
        allocator.free(b)
        assert allocator.stats.live_bytes == 0
        assert allocator.stats.peak_bytes >= 200

    def test_coalescing_allows_large_realloc(self, space):
        allocator = HeapAllocator(space)
        blocks = [allocator.malloc(64) for _ in range(8)]
        for block in blocks:
            allocator.free(block)
        # After coalescing the freed blocks, a larger allocation fits at the front.
        big = allocator.malloc(64 * 8)
        assert big == blocks[0]

    def test_allocation_size(self, space):
        allocator = HeapAllocator(space)
        address = allocator.malloc(30)
        assert allocator.allocation_size(address) >= 30

"""Store format 6: compressed columnar codec + parallel decode + single-flight.

Covers the v6 read path on top of the existing store suites: the
``binary-z`` default codec compresses on disk but answers identically,
v5 (and v4) stores open unchanged -- including the segment-log replay a
naive version gate would have skipped -- and transcode only on compact,
cold misses are single-flight (a stampede of readers decodes each
segment exactly once), the store's shared decode pools are created
lazily and shut down by ``close()`` (after which reads degrade to
sequential instead of failing), and the thread and process decode paths
return identical payloads.
"""

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.cpg import EdgeKind
from repro.core.thunk import SubComputation
from repro.core.vector_clock import VectorClock
from repro.errors import StoreError
from repro.store import (
    DEFAULT_CODEC,
    STORE_FORMAT_VERSION,
    STORE_FORMAT_VERSION_V5,
    ProvenanceStore,
    SegmentCache,
    StoreQueryEngine,
    StoreSink,
)
from repro.store.format import MANIFEST_NAME


def make_node(tid, index, reads=(), writes=()):
    node = SubComputation(tid=tid, index=index, clock=VectorClock({tid: index + 1}))
    node.read_set.update(reads)
    node.write_set.update(writes)
    return node


def build_store(store_dir, epochs=6, nodes_per_epoch=4, finish=True):
    """Stream a synthetic run, one flushed epoch at a time."""
    store = ProvenanceStore.open_or_create(store_dir)
    sink = StoreSink(
        store, segment_nodes=nodes_per_epoch, flush_every_epochs=1, workload="synthetic"
    )
    for position in range(epochs * nodes_per_epoch):
        node = make_node(1, position, reads={position % 7}, writes={100 + position})
        edges = []
        if position:
            edges.append(((1, position - 1), (1, position), EdgeKind.CONTROL, {}))
        sink.subcomputation_published(node, edges)
    if finish:
        sink.finish()
    return store, sink


def downgrade_manifest_version(store_dir, version):
    manifest_path = os.path.join(store_dir, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    document["version"] = version
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)


# ---------------------------------------------------------------------- #
# The compressed default codec
# ---------------------------------------------------------------------- #


class TestCompressedDefault:
    def test_new_stores_write_compressed_segments(self, tmp_path):
        store_dir = str(tmp_path / "store")
        store, _ = build_store(store_dir)
        summary = store.info()
        assert summary["format_version"] == STORE_FORMAT_VERSION
        assert set(summary["codecs"]) == {"binary-z"}
        per = summary["codec_bytes"]["binary-z"]
        assert per["segments"] == summary["segments"]
        # The whole point: compressed on disk, by a real margin.
        assert per["stored_bytes"] < per["raw_bytes"]

    def test_compressed_store_answers_identically_to_uncompressed(self, tmp_path):
        answers = {}
        for codec in ("binary", "binary-z"):
            store_dir = str(tmp_path / codec)
            store = ProvenanceStore.open_or_create(store_dir)
            run = store.new_run(workload=codec)
            nodes = [make_node(1, i, reads={i % 5}, writes={50 + i}) for i in range(12)]
            edges = [
                ((1, i - 1), (1, i), EdgeKind.CONTROL, {}) for i in range(1, 12)
            ]
            store.append_segment(nodes, edges, run=run, codec=codec)
            store.flush()
            engine = StoreQueryEngine(ProvenanceStore.open(store_dir))
            answers[codec] = engine.backward_slice((1, 11), run=1)
        assert answers["binary"] == answers["binary-z"]


# ---------------------------------------------------------------------- #
# Back-compat: v5 and v4 stores under the v6 software
# ---------------------------------------------------------------------- #


class TestV5BackCompat:
    def test_v5_store_opens_with_log_replay(self, tmp_path):
        # The critical gate: an unfinished v5 store keeps committed epochs
        # only in segments.log; opening it under v6 must still replay
        # them (a naive `version < current` replay gate would not).
        store_dir = str(tmp_path / "v5-store")
        store, sink = build_store(store_dir, epochs=4, finish=False)
        assert store.log_state()["uncheckpointed_records"] > 0
        downgrade_manifest_version(store_dir, STORE_FORMAT_VERSION_V5)
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.manifest.version == STORE_FORMAT_VERSION_V5
        assert reopened.manifest.node_count == 16
        assert StoreQueryEngine(reopened).backward_slice((1, 15), run=sink.run_id)

    def test_v5_store_reads_never_rewrite_a_byte(self, tmp_path):
        store_dir = str(tmp_path / "v5-store")
        build_store(store_dir, epochs=3)
        downgrade_manifest_version(store_dir, STORE_FORMAT_VERSION_V5)
        before = {}
        for root, _, names in os.walk(store_dir):
            for name in names:
                path = os.path.join(root, name)
                before[path] = os.path.getsize(path)
        store = ProvenanceStore.open(store_dir)
        StoreQueryEngine(store).backward_slice((1, 11), run=1)
        after = {}
        for root, _, names in os.walk(store_dir):
            for name in names:
                path = os.path.join(root, name)
                after[path] = os.path.getsize(path)
        assert before == after

    def test_compact_transcodes_old_codecs_to_compressed(self, tmp_path):
        store_dir = str(tmp_path / "store")
        store = ProvenanceStore.open_or_create(store_dir)
        run = store.new_run(workload="old")
        for start in (0, 4, 8):
            store.append_segment(
                [make_node(1, start + i) for i in range(4)], [], run=run, codec="binary"
            )
        store.flush()
        assert set(info.codec for info in store.manifest.segments) == {"binary"}
        stored_before = sum(info.stored_bytes for info in store.manifest.segments)
        store.compact(segment_nodes=64)
        reopened = ProvenanceStore.open(store_dir)
        assert all(info.codec == DEFAULT_CODEC for info in reopened.manifest.segments)
        stored_after = sum(info.stored_bytes for info in reopened.manifest.segments)
        assert stored_after < stored_before
        assert StoreQueryEngine(reopened).backward_slice((1, 11), run=1)


# ---------------------------------------------------------------------- #
# Single-flight cache fills
# ---------------------------------------------------------------------- #


class TestSingleFlight:
    def test_cold_miss_stampede_decodes_each_segment_once(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(store_dir, epochs=8)
        store = ProvenanceStore.open(store_dir)
        # Slow every (single-flight) file read a little: scheduling alone
        # cannot be trusted to overlap the threads' fills, and with no
        # overlap the coalescing assertion below is vacuous.
        real_read = store._read_segment_file

        def slow_read(segment_id):
            time.sleep(0.002)
            return real_read(segment_id)

        store._read_segment_file = slow_read
        segment_ids = [info.segment_id for info in store.manifest.segments]
        assert len(segment_ids) >= 8
        threads = 16
        barrier = threading.Barrier(threads)
        results = [None] * threads
        errors = []

        def hammer(slot):
            try:
                barrier.wait()
                loaded = {}
                for segment_id in segment_ids:
                    loaded[segment_id] = store.segment(segment_id)
                results[slot] = loaded
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [
            threading.Thread(target=hammer, args=(slot,)) for slot in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        # Exactly one read+decode per segment across all 16 threads.
        assert store.read_stats.segments_read == len(segment_ids)
        assert store.cache.stats.misses == len(segment_ids)
        assert store.cache.stats.coalesced > 0
        reference = results[0]
        for loaded in results[1:]:
            assert set(loaded) == set(reference)
            for segment_id in reference:
                assert loaded[segment_id] is reference[segment_id]
        store.close()

    def test_segment_many_stampede_decodes_each_segment_once(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(store_dir, epochs=8)
        store = ProvenanceStore.open(store_dir)
        segment_ids = [info.segment_id for info in store.manifest.segments]
        threads = 12
        barrier = threading.Barrier(threads)

        def sweep(_):
            barrier.wait()
            return store.segment_many(segment_ids, parallelism=4)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            sweeps = list(pool.map(sweep, range(threads)))
        assert store.read_stats.segments_read == len(segment_ids)
        for swept in sweeps:
            assert set(swept) == set(segment_ids)
        store.close()

    def test_waiters_see_the_owners_error(self):
        cache = SegmentCache(max_bytes=1 << 20)
        owner = cache.begin_fill("ns", 1, 7)
        assert owner.status == "owner"
        waiter = cache.begin_fill("ns", 1, 7)
        assert waiter.status == "waiter"
        boom = StoreError("decode failed")
        owner.fail(boom)
        with pytest.raises(StoreError, match="decode failed"):
            waiter.wait()
        # The failed fill is gone: the next reader retries from scratch.
        assert cache.begin_fill("ns", 1, 7).status == "owner"

    def test_invalidation_racing_a_fill_skips_admission(self):
        cache = SegmentCache(max_bytes=1 << 20)
        owner = cache.begin_fill("ns", 1, 7)
        waiter = cache.begin_fill("ns", 1, 7)
        cache.invalidate("ns")  # compact/gc while the decode is in flight
        payload = object()
        owner.complete(payload)
        # The waiter still gets the bytes it asked for (segment ids are
        # never reused, so they are not stale) ...
        assert waiter.wait(timeout=5) is payload
        # ... but the dead generation was not admitted to the cache.
        assert cache.get("ns", 1, 7) is None

    def test_fill_wait_times_out_loudly(self):
        cache = SegmentCache(max_bytes=1 << 20)
        cache.begin_fill("ns", 1, 7)  # owner that never completes
        waiter = cache.begin_fill("ns", 1, 7)
        with pytest.raises(StoreError, match="timed out"):
            waiter.wait(timeout=0.05)


# ---------------------------------------------------------------------- #
# Shared decode pools and close()
# ---------------------------------------------------------------------- #


class TestDecodePools:
    def test_executor_is_lazy_and_shared(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(store_dir, epochs=4)
        store = ProvenanceStore.open(store_dir)
        segment_ids = [info.segment_id for info in store.manifest.segments]
        assert store._executor is None  # nothing parallel happened yet
        store.segment_many(segment_ids, parallelism=4)
        first = store._executor
        assert first is not None
        store.cache.invalidate(store.cache_namespace)
        store.segment_many(segment_ids, parallelism=4)
        assert store._executor is first  # reused, not a per-call pool
        store.close()

    def test_injected_executor_is_still_honored(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(store_dir, epochs=4)
        store = ProvenanceStore.open(store_dir)
        segment_ids = [info.segment_id for info in store.manifest.segments]
        with ThreadPoolExecutor(max_workers=2) as pool:
            payloads = store.segment_many(segment_ids, parallelism=4, executor=pool)
        assert set(payloads) == set(segment_ids)
        assert store._executor is None  # the store never built its own
        store.close()

    def test_close_shuts_pools_and_reads_degrade_to_sequential(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(store_dir, epochs=4)
        store = ProvenanceStore.open(store_dir)
        segment_ids = [info.segment_id for info in store.manifest.segments]
        store.segment_many(segment_ids, parallelism=4)
        store.close()
        assert store._executor is None
        store.cache.invalidate(store.cache_namespace)
        payloads = store.segment_many(segment_ids, parallelism=4)
        assert set(payloads) == set(segment_ids)
        assert store._executor is None  # closed stores never resurrect pools
        store.close()  # idempotent

    def test_context_manager_closes(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(store_dir, epochs=4)
        with ProvenanceStore.open(store_dir) as store:
            segment_ids = [info.segment_id for info in store.manifest.segments]
            store.segment_many(segment_ids, parallelism=4)
            assert store._executor is not None
        assert store._executor is None

    def test_thread_and_process_decode_agree(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(store_dir, epochs=8)
        segment_ids = [
            info.segment_id
            for info in ProvenanceStore.open(store_dir).manifest.segments
        ]

        def canonical(payloads):
            return {
                segment_id: (
                    sorted(payload.nodes),
                    sorted(payload.edges, key=repr),
                )
                for segment_id, payload in payloads.items()
            }

        by_mode = {}
        for mode in ("thread", "process"):
            store = ProvenanceStore.open(store_dir)
            store.decode_mode = mode
            by_mode[mode] = canonical(store.segment_many(segment_ids, parallelism=4))
            assert store.read_stats.segments_read == len(segment_ids)
            store.close()
        assert by_mode["thread"] == by_mode["process"]

    def test_broken_process_pool_falls_back_to_threads(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(store_dir, epochs=8)
        store = ProvenanceStore.open(store_dir)
        store.decode_mode = "process"
        store._process_pool_broken = True  # as if a worker died earlier
        segment_ids = [info.segment_id for info in store.manifest.segments]
        payloads = store.segment_many(segment_ids, parallelism=4)
        assert set(payloads) == set(segment_ids)
        assert store._process_pool is None
        store.close()

    def test_missing_segment_file_is_a_store_error_in_every_mode(self, tmp_path):
        store_dir = str(tmp_path / "store")
        build_store(store_dir, epochs=4)
        for mode in ("thread", "process"):
            store = ProvenanceStore.open(store_dir)
            store.decode_mode = mode
            segment_ids = [info.segment_id for info in store.manifest.segments]
            victim = store.manifest.segment_info(segment_ids[0]).file_name
            victim_path = os.path.join(store_dir, "segments", victim)
            blob = open(victim_path, "rb").read()
            os.remove(victim_path)
            try:
                with pytest.raises(StoreError, match="missing"):
                    store.segment_many(segment_ids, parallelism=4)
                # The pool was not condemned for a store fault.
                assert not store._process_pool_broken
            finally:
                with open(victim_path, "wb") as handle:
                    handle.write(blob)
                store.close()

"""Store format 5: the append-only segment log and its crash recovery.

Covers the v5 commit protocol on top of the existing store suites: each
flush appends one framed O(epoch) record to ``segments.log`` instead of
rewriting the manifest, a cold open replays the committed log tail, torn
or corrupt tails are detected and cut, stale records left by a crash
between checkpoint and log reset are skipped by sequence number, missing
index deltas referenced by a committed record recover by rebuilding from
segments, and v4 stores open unchanged then upgrade to v5 on their first
flush.
"""

import json
import os

import pytest

from repro.core.cpg import EdgeKind
from repro.core.thunk import SubComputation
from repro.core.vector_clock import VectorClock
from repro.errors import StoreError
from repro.store import (
    SEGMENT_LOG_NAME,
    STORE_FORMAT_VERSION,
    STORE_FORMAT_VERSION_V4,
    ProvenanceStore,
    SegmentLog,
    StoreQueryEngine,
    StoreSink,
)
from repro.store.format import INDEX_DIR, MANIFEST_NAME, index_delta_file_name, run_index_dir_name
from repro.store.log import LOG_RECORD_MAGIC, encode_log_record


def make_node(tid, index, reads=(), writes=()):
    node = SubComputation(tid=tid, index=index, clock=VectorClock({tid: index + 1}))
    node.read_set.update(reads)
    node.write_set.update(writes)
    return node


def stream_epochs(store_dir, epochs=5, nodes_per_epoch=4, finish=False):
    """Stream a synthetic run, one flushed epoch at a time, WITHOUT finishing.

    Leaving the run unfinished keeps the epochs in ``segments.log`` (the
    run-complete checkpoint would fold them into the manifest), which is
    exactly the mid-run crash state these tests exercise.
    """
    store = ProvenanceStore.open_or_create(store_dir)
    sink = StoreSink(
        store, segment_nodes=nodes_per_epoch, flush_every_epochs=1, workload="synthetic"
    )
    for position in range(epochs * nodes_per_epoch):
        node = make_node(1, position, reads={position % 7}, writes={100 + position})
        edges = []
        if position:
            edges.append(((1, position - 1), (1, position), EdgeKind.CONTROL, {}))
        sink.subcomputation_published(node, edges)
    if finish:
        sink.finish()
    return store, sink


def log_path_of(store_dir):
    return os.path.join(store_dir, SEGMENT_LOG_NAME)


# ---------------------------------------------------------------------- #
# The log file itself (framing, scan, truncation)
# ---------------------------------------------------------------------- #


class TestSegmentLog:
    def test_append_scan_round_trip(self, tmp_path):
        log = SegmentLog(str(tmp_path / "segments.log"))
        assert not log.exists()
        assert log.record_count == 0
        for seq in (1, 2, 3):
            log.append({"seq": seq, "payload": "x" * seq})
        assert log.record_count == 3
        fresh = SegmentLog(log.path)
        records = fresh.scan()
        assert [record["seq"] for record in records] == [1, 2, 3]
        assert fresh.valid_bytes == fresh.size_bytes()

    def test_scan_stops_at_torn_frame(self, tmp_path):
        log = SegmentLog(str(tmp_path / "segments.log"))
        for seq in (1, 2):
            log.append({"seq": seq})
        with open(log.path, "ab") as handle:
            handle.write(encode_log_record({"seq": 3})[:-4])  # torn mid-body
        fresh = SegmentLog(log.path)
        assert [record["seq"] for record in fresh.scan()] == [1, 2]
        assert fresh.valid_bytes < fresh.size_bytes()

    def test_append_truncates_torn_tail(self, tmp_path):
        log = SegmentLog(str(tmp_path / "segments.log"))
        for seq in (1, 2):
            log.append({"seq": seq})
        with open(log.path, "ab") as handle:
            handle.write(LOG_RECORD_MAGIC + b"\xff\xff")  # garbage header
        recovered = SegmentLog(log.path)
        recovered.append({"seq": 3})
        assert [record["seq"] for record in SegmentLog(log.path).scan()] == [1, 2, 3]
        # Nothing left past the commit horizon.
        assert SegmentLog(log.path).valid_bytes == os.path.getsize(log.path)

    def test_corrupt_crc_invalidates_record(self, tmp_path):
        log = SegmentLog(str(tmp_path / "segments.log"))
        log.append({"seq": 1})
        log.append({"seq": 2})
        with open(log.path, "rb") as handle:
            data = handle.read()
        with open(log.path, "wb") as handle:
            handle.write(data[:-1] + bytes([data[-1] ^ 0x01]))
        assert [record["seq"] for record in SegmentLog(log.path).scan()] == [1]

    def test_shrunk_log_refuses_append(self, tmp_path):
        log = SegmentLog(str(tmp_path / "segments.log"))
        log.append({"seq": 1})
        log.append({"seq": 2})
        os.truncate(log.path, 4)  # shrank below the horizon log already saw
        with pytest.raises(StoreError, match="shrank below its commit horizon"):
            log.append({"seq": 3})

    def test_reset_empties_the_log(self, tmp_path):
        log = SegmentLog(str(tmp_path / "segments.log"))
        log.append({"seq": 1})
        log.reset()
        assert log.exists()
        assert log.record_count == 0
        assert SegmentLog(log.path).scan() == []


# ---------------------------------------------------------------------- #
# O(epoch) flushes: append to the log, not the manifest
# ---------------------------------------------------------------------- #


class TestLogAppendFlush:
    def test_each_flush_appends_one_record_and_leaves_manifest_alone(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        manifest_path = os.path.join(store_dir, MANIFEST_NAME)
        store, sink = stream_epochs(store_dir, epochs=6)
        before = os.stat(manifest_path)
        state = store.log_state()
        assert state["records"] == sink.epochs_committed
        assert state["uncheckpointed_records"] == sink.epochs_committed
        assert state["checkpoint_seq"] == 0
        assert state["last_seq"] == sink.epochs_committed
        # The manifest checkpoint was written once, at creation.
        assert os.stat(manifest_path).st_mtime_ns == before.st_mtime_ns
        assert os.stat(manifest_path).st_size == before.st_size

    def test_log_records_stay_epoch_sized(self, tmp_path):
        # The whole point of v5: a late flush appends the same few bytes
        # as an early one, instead of rewriting the (grown) manifest.
        store_dir = str(tmp_path / "stream")
        store = ProvenanceStore.open_or_create(store_dir)
        run_id = store.new_run(workload="sizes")
        log = log_path_of(store_dir)
        increments = []
        previous = 0
        for position in range(12):
            store.append_segment(
                [make_node(1, position, writes={100 + position})], [], run=run_id
            )
            store.flush()
            size = os.path.getsize(log)
            increments.append(size - previous)
            previous = size
        assert max(increments) <= 2 * min(increments)

    def test_cold_reopen_replays_log_tail(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        store, sink = stream_epochs(store_dir, epochs=5, nodes_per_epoch=4)
        expected = store.load_cpg(run=sink.run_id)
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.manifest.segment_count == store.manifest.segment_count
        assert reopened.manifest.node_count == 20
        assert set(reopened.load_cpg(run=sink.run_id).nodes()) == set(expected.nodes())
        engine = StoreQueryEngine(reopened)
        assert engine.backward_slice((1, 19), run=sink.run_id) == StoreQueryEngine(
            store
        ).backward_slice((1, 19), run=sink.run_id)

    def test_checkpoint_interval_folds_log_into_manifest(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        store = ProvenanceStore.open_or_create(store_dir)
        store.checkpoint_interval = 4
        run_id = store.new_run(workload="interval")
        for position in range(10):
            store.append_segment([make_node(1, position)], [], run=run_id)
            store.flush()
        # Flushes 5 and 10 hit the interval and checkpointed.
        assert store.log_state()["records"] == 0
        assert store.log_state()["uncheckpointed_records"] == 0
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.manifest.log_seq == 8
        assert reopened.manifest.node_count == 10

    def test_finish_checkpoints_the_run(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        store, sink = stream_epochs(store_dir, epochs=4, finish=True)
        # Run completion folded everything into the manifest checkpoint.
        assert store.log_state()["records"] == 0
        with open(os.path.join(store_dir, MANIFEST_NAME), "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["version"] == STORE_FORMAT_VERSION
        assert len(document["segments"]) == store.manifest.segment_count

    def test_manifest_full_rewrite_knob_checkpoints_every_flush(self, tmp_path):
        store_dir = str(tmp_path / "knob")
        store = ProvenanceStore.open_or_create(store_dir)
        store.manifest_full_rewrite = True
        run_id = store.new_run(workload="knob")
        for position in range(3):
            store.append_segment([make_node(1, position)], [], run=run_id)
            store.flush()
            assert store.log_state()["records"] == 0
        assert ProvenanceStore.open(store_dir).manifest.node_count == 3


# ---------------------------------------------------------------------- #
# Crash recovery
# ---------------------------------------------------------------------- #


class TestCrashRecovery:
    @pytest.mark.parametrize("tear", ["truncate", "bad_crc", "trailing_garbage"])
    def test_torn_tail_recovers_to_last_committed_epoch(self, tmp_path, tear):
        store_dir = str(tmp_path / "stream")
        store, sink = stream_epochs(store_dir, epochs=5, nodes_per_epoch=4)
        log = log_path_of(store_dir)
        if tear == "truncate":
            os.truncate(log, os.path.getsize(log) - 5)
        elif tear == "bad_crc":
            with open(log, "rb") as handle:
                data = handle.read()
            with open(log, "wb") as handle:
                handle.write(data[:-1] + bytes([data[-1] ^ 0x01]))
        else:
            with open(log, "ab") as handle:
                handle.write(b"\x00 half a frame")
        lost = 4 if tear in ("truncate", "bad_crc") else 0
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.manifest.node_count == 20 - lost
        assert len(reopened.load_cpg(run=sink.run_id)) == 20 - lost
        # The next append lands on the commit horizon and the store is
        # fully consistent again.
        run_id = sink.run_id
        reopened.append_segment([make_node(2, 0, writes={999})], [], run=run_id)
        reopened.flush()
        final = ProvenanceStore.open(store_dir)
        assert final.manifest.node_count == 21 - lost
        assert SegmentLog(log).valid_bytes == os.path.getsize(log)

    def test_crash_between_log_append_and_index_delta_rebuilds(self, tmp_path):
        # Crash window: the log record committed (it names the epoch's
        # segment and index delta) but the delta file never reached disk.
        # The indexes must be rebuilt from the committed segments.
        store_dir = str(tmp_path / "stream")
        store, sink = stream_epochs(store_dir, epochs=5)
        expected = store.load_cpg(run=sink.run_id)
        run_info = store.manifest.run_info(sink.run_id)
        run_dir = os.path.join(store_dir, INDEX_DIR, run_index_dir_name(sink.run_id))
        os.remove(os.path.join(run_dir, index_delta_file_name(run_info.index_deltas[-1])))
        reopened = ProvenanceStore.open(store_dir)
        merged = reopened.indexes_for(sink.run_id)  # triggers the rebuild
        assert merged.needs_base
        assert len(merged.node_segments) == 20
        assert set(reopened.load_cpg(run=sink.run_id).nodes()) == set(expected.nodes())
        # The rebuild is folded into a base by the next flush.
        reopened.flush()
        clean = ProvenanceStore.open(store_dir)
        assert not clean.indexes_for(sink.run_id).needs_base

    def test_stale_records_after_checkpoint_crash_are_skipped(self, tmp_path):
        # Crash window: the checkpoint manifest renamed into place but the
        # log reset never happened.  Replay must skip every record the
        # checkpoint's log_seq already covers -- applying one would
        # double-append its segments.
        store_dir = str(tmp_path / "stream")
        store, sink = stream_epochs(store_dir, epochs=4)
        log = log_path_of(store_dir)
        with open(log, "rb") as handle:
            stale = handle.read()
        store.flush(checkpoint=True)
        with open(log, "wb") as handle:
            handle.write(stale)  # undo the reset
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.manifest.node_count == 16
        assert reopened.manifest.segment_count == store.manifest.segment_count
        assert reopened.log_state()["uncheckpointed_records"] == 0
        # Appends continue past the stale tail without colliding.
        reopened.append_segment([make_node(3, 0)], [], run=sink.run_id)
        reopened.flush()
        assert ProvenanceStore.open(store_dir).manifest.node_count == 17

    def test_reader_racing_a_checkpoint_refuses_the_gapped_tail(self, tmp_path):
        # Race window (a concurrent reader, not a crash): the reader
        # loads MANIFEST.json, then the writer checkpoints -- folding
        # every log record into a newer manifest and resetting the log --
        # and appends a fresh record before the reader scans
        # segments.log.  That record's seq jumps past everything the
        # stale manifest covers; applying it across the gap would
        # silently drop the folded-in segments while node_count still
        # claims they exist.
        store_dir = str(tmp_path / "stream")
        store, sink = stream_epochs(store_dir, epochs=4)
        stale = ProvenanceStore._read_manifest(store_dir)  # reader's manifest read
        store.flush(checkpoint=True)
        store.append_segment([make_node(5, 0, writes={777})], [], run=sink.run_id)
        store.flush()  # one post-checkpoint record, seq past the stale view
        reader = ProvenanceStore(store_dir, stale)
        reader._manifest_on_disk = True
        assert reader._replay_segment_log() is False  # gap detected
        # The refused tail leaves a consistent (if stale) view: counters
        # agree with the segment table instead of advertising segments
        # the gapped record dropped.
        assert reader.manifest.node_count == sum(
            info.nodes for info in reader.manifest.segments
        )
        assert reader.log_state()["uncheckpointed_records"] == 0
        # A full open re-reads the newer manifest on the gap and replays
        # cleanly, seeing the checkpoint plus the fresh record.
        assert ProvenanceStore.open(store_dir).manifest.node_count == 17

    def test_semantically_invalid_record_stops_replay_and_forces_checkpoint(self, tmp_path):
        # A CRC-valid record whose content contradicts the manifest (here:
        # a segment id that was already committed) must be rejected whole,
        # and the next flush must checkpoint so it can never shadow live
        # appends.
        store_dir = str(tmp_path / "stream")
        store, sink = stream_epochs(store_dir, epochs=3)
        records = SegmentLog(log_path_of(store_dir)).scan()
        forged = dict(records[-1])
        forged["seq"] = records[-1]["seq"] + 1  # replay reaches it...
        forged["segments"] = records[0]["segments"]  # ...but the ids rewind
        SegmentLog(log_path_of(store_dir)).append(forged)
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.manifest.node_count == 12  # forged record not applied
        reopened.flush()  # auto policy: must checkpoint
        assert reopened.log_state()["records"] == 0
        final = ProvenanceStore.open(store_dir)
        assert final.manifest.node_count == 12
        assert final.manifest.log_seq > 0


# ---------------------------------------------------------------------- #
# v4 back-compat and in-place upgrade
# ---------------------------------------------------------------------- #


def downgrade_to_v4(store_dir):
    """Rewrite a v5 store directory as a genuine v4 store.

    The inverse of the in-place upgrade: a version-4 manifest without the
    ``log_seq`` column and no ``segments.log`` -- byte-layout-wise what
    PR 4 wrote.  Only valid right after a checkpoint (the manifest must
    already name every segment).
    """
    log = log_path_of(store_dir)
    assert not os.path.exists(log) or SegmentLog(log).scan() == []
    if os.path.exists(log):
        os.remove(log)
    manifest_path = os.path.join(store_dir, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    document["version"] = STORE_FORMAT_VERSION_V4
    del document["log_seq"]
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)


@pytest.fixture()
def v4_store(tmp_path):
    store_dir = str(tmp_path / "v4-store")
    store, sink = stream_epochs(store_dir, epochs=4, finish=True)
    downgrade_to_v4(store_dir)
    return store_dir, sink.run_id


class TestV4BackCompat:
    def test_v4_store_opens_and_queries_unchanged(self, v4_store):
        store_dir, run_id = v4_store
        store = ProvenanceStore.open(store_dir)
        assert store.manifest.version == STORE_FORMAT_VERSION_V4
        assert len(store.load_cpg(run=run_id)) == 16
        assert StoreQueryEngine(store).backward_slice((1, 15), run=run_id)
        # Reading never creates v5 artefacts.
        assert not os.path.exists(log_path_of(store_dir))

    def test_first_flush_upgrades_v4_store_in_place(self, v4_store):
        store_dir, run_id = v4_store
        store = ProvenanceStore.open(store_dir)
        store.append_segment([make_node(9, 0, writes={5000})], [], run=run_id)
        store.flush()  # auto policy: version mismatch forces a checkpoint
        assert os.path.exists(log_path_of(store_dir))
        reopened = ProvenanceStore.open(store_dir)
        assert reopened.manifest.version == STORE_FORMAT_VERSION
        assert reopened.manifest.node_count == 17
        # Subsequent flushes take the O(epoch) log-append path.
        reopened.append_segment([make_node(9, 1)], [], run=run_id)
        reopened.flush()
        assert reopened.log_state()["records"] == 1
        assert ProvenanceStore.open(store_dir).manifest.node_count == 18


# ---------------------------------------------------------------------- #
# Introspection
# ---------------------------------------------------------------------- #


class TestIntrospection:
    def test_info_reports_segment_log_state(self, tmp_path):
        store_dir = str(tmp_path / "stream")
        store, sink = stream_epochs(store_dir, epochs=3)
        summary = store.info()
        state = summary["segment_log"]
        assert state["records"] == 3
        assert state["bytes"] > 0
        assert state["uncheckpointed_records"] == 3
        assert state["checkpoint_interval"] == store.checkpoint_interval

    def test_cli_info_surfaces_segment_log(self, tmp_path, capsys):
        from repro.store.__main__ import main as store_cli

        store_dir = str(tmp_path / "stream")
        stream_epochs(store_dir, epochs=3)
        assert store_cli(["info", store_dir, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["segment_log"]["records"] == 3
        assert store_cli(["info", store_dir]) == 0
        text = capsys.readouterr().out
        assert "segment log:" in text
        assert "uncheckpointed" in text

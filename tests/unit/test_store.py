"""Tests for the persistent provenance store (:mod:`repro.store`)."""

import json

import pytest

from repro.core.algorithm import ProvenanceTracker
from repro.core.cpg import EdgeKind
from repro.core.dependencies import derive_data_edges
from repro.core.queries import (
    DEFAULT_SLICE_KINDS,
    backward_slice,
    build_page_index,
    find_racy_pairs,
    forward_slice,
    lineage_of_pages,
    propagate_taint,
)
from repro.core.serialization import (
    FORMAT_VERSION_V2,
    cpg_from_dict,
    cpg_to_dict,
    edge_from_dict,
    node_key,
    parse_node_key,
    subcomputation_from_dict,
    write_cpg,
)
from repro.errors import ProvenanceError, StoreError
from repro.inspector.api import run_with_provenance
from repro.store import STORE_FORMAT_VERSION, ProvenanceStore, StoreQueryEngine, StoreSink
from repro.store.__main__ import main as store_cli
from repro.store.segment import decode_segment, encode_segment


def build_example_cpg(racy: bool = False):
    """A three-thread lock-schedule CPG with input pages and data edges."""
    tracker = ProvenanceTracker()
    tracker.register_input_pages({100, 101})
    lock = 7
    for tid in (1, 2, 3):
        tracker.on_thread_start(tid)
    tracker.on_memory_access(1, 100, is_write=False)
    tracker.on_memory_access(1, 10, is_write=True)
    tracker.on_sync_boundary(1, "mutex_unlock")
    tracker.on_release(1, lock)
    tracker.begin_next(1)
    tracker.on_sync_boundary(2, "mutex_lock")
    tracker.on_acquire(2, lock)
    tracker.begin_next(2)
    tracker.on_memory_access(2, 10, is_write=False)
    tracker.on_memory_access(2, 11, is_write=True)
    tracker.on_sync_boundary(2, "mutex_unlock")
    tracker.on_release(2, lock)
    tracker.begin_next(2)
    tracker.on_sync_boundary(3, "mutex_lock")
    tracker.on_acquire(3, lock)
    tracker.begin_next(3)
    tracker.on_memory_access(3, 11, is_write=False)
    tracker.on_memory_access(3, 101, is_write=False)
    tracker.on_memory_access(3, 12, is_write=True)
    if racy:
        tracker.on_memory_access(1, 12, is_write=True)
    for tid in (1, 2, 3):
        tracker.on_thread_end(tid)
    cpg = tracker.finalize()
    derive_data_edges(cpg)
    return cpg


def canonical_edges(cpg):
    entries = []
    for source, target, attrs in cpg.edges():
        kind = attrs["kind"]
        if kind is EdgeKind.SYNC:
            extra = (attrs.get("object_id"), attrs.get("operation", ""))
        elif kind is EdgeKind.DATA:
            extra = (tuple(sorted(attrs.get("pages", ()))),)
        else:
            extra = ()
        entries.append((source, target, kind.value, extra))
    return sorted(entries)


@pytest.fixture(scope="module")
def histogram_run():
    return run_with_provenance("histogram", num_threads=4, size="small")


# ---------------------------------------------------------------------- #
# Serialization v2 + robustness (satellite)
# ---------------------------------------------------------------------- #


class TestSerializationV2:
    def test_v2_round_trip_preserves_everything(self):
        cpg = build_example_cpg()
        clone = cpg_from_dict(cpg_to_dict(cpg, version=FORMAT_VERSION_V2))
        assert clone.nodes() == cpg.nodes()
        assert canonical_edges(clone) == canonical_edges(cpg)
        for node_id in cpg.nodes():
            assert clone.subcomputation(node_id).read_set == cpg.subcomputation(node_id).read_set
            assert clone.subcomputation(node_id).clock == cpg.subcomputation(node_id).clock

    def test_v2_uses_compact_endpoints(self):
        cpg = build_example_cpg()
        data = cpg_to_dict(cpg, version=FORMAT_VERSION_V2)
        assert data["format_version"] == FORMAT_VERSION_V2
        assert all(isinstance(edge["source"], str) for edge in data["edges"])

    def test_v1_documents_still_load(self):
        cpg = build_example_cpg()
        data = cpg_to_dict(cpg)  # default: v1
        assert data["format_version"] == 1
        clone = cpg_from_dict(data)
        assert canonical_edges(clone) == canonical_edges(cpg)

    def test_unknown_edge_kind_reports_provenance_error(self):
        with pytest.raises(ProvenanceError, match="unknown edge kind"):
            edge_from_dict({"source": "1:0", "target": "1:1", "kind": "telepathy"})

    def test_missing_edge_fields_report_provenance_error(self):
        with pytest.raises(ProvenanceError, match="missing field"):
            edge_from_dict({"source": "1:0", "kind": "control"})

    def test_missing_node_fields_report_provenance_error(self):
        with pytest.raises(ProvenanceError, match="missing field"):
            subcomputation_from_dict({"tid": 1})

    def test_unsupported_version_lists_supported_ones(self):
        with pytest.raises(ProvenanceError, match="supported"):
            cpg_from_dict({"format_version": 3, "nodes": [], "edges": []})

    def test_malformed_node_key_rejected(self):
        with pytest.raises(ProvenanceError):
            parse_node_key("not-a-key")
        assert parse_node_key(node_key((4, 9))) == (4, 9)


# ---------------------------------------------------------------------- #
# Segment codec
# ---------------------------------------------------------------------- #


class TestSegmentCodec:
    def test_round_trip(self):
        cpg = build_example_cpg()
        nodes = [cpg.subcomputation(node_id) for node_id in cpg.nodes()]
        edges = [
            (source, target, attrs["kind"], {k: v for k, v in attrs.items() if k != "kind"})
            for source, target, attrs in cpg.edges()
        ]
        framed, raw_bytes = encode_segment(nodes, edges)
        assert raw_bytes > len(framed) - 16  # compressed or near-incompressible
        payload = decode_segment(framed)
        assert set(payload.nodes) == set(cpg.nodes())
        assert len(payload.edges) == len(edges)

    def test_bad_magic_rejected(self):
        with pytest.raises(StoreError, match="magic"):
            decode_segment(b"NOPE" + b"\x00" * 32)

    def test_corrupt_payload_rejected(self):
        framed, _ = encode_segment([], [])
        with pytest.raises(StoreError):
            decode_segment(framed[:-1] + b"\xff\xff\xff")


# ---------------------------------------------------------------------- #
# Store round trip and lifecycle
# ---------------------------------------------------------------------- #


class TestStoreRoundTrip:
    def test_ingest_load_preserves_graph(self, tmp_path):
        cpg = build_example_cpg()
        store = ProvenanceStore.create(str(tmp_path / "store"))
        segments = store.ingest(cpg, segment_nodes=3)
        assert segments >= 2
        reopened = ProvenanceStore.open(str(tmp_path / "store"))
        clone = reopened.load_cpg()
        assert clone.nodes() == cpg.nodes()
        assert canonical_edges(clone) == canonical_edges(cpg)
        for node_id in cpg.nodes():
            original = cpg.subcomputation(node_id)
            copy = clone.subcomputation(node_id)
            assert copy.read_set == original.read_set
            assert copy.write_set == original.write_set
            assert copy.clock == original.clock
            assert copy.started_by == original.started_by
            assert copy.ended_by == original.ended_by

    def test_ingest_json_file_accepts_v1(self, tmp_path):
        cpg = build_example_cpg()
        json_path = tmp_path / "cpg.json"
        write_cpg(cpg, str(json_path))  # v1 document
        store = ProvenanceStore.create(str(tmp_path / "store"))
        store.ingest_json_file(str(json_path), segment_nodes=4)
        assert canonical_edges(store.load_cpg()) == canonical_edges(cpg)
        assert store.manifest.runs and store.manifest.runs[0].meta["source"] == "cpg.json"

    def test_create_twice_fails(self, tmp_path):
        ProvenanceStore.create(str(tmp_path))
        with pytest.raises(StoreError, match="already exists"):
            ProvenanceStore.create(str(tmp_path))

    def test_open_missing_fails(self, tmp_path):
        with pytest.raises(StoreError, match="no provenance store"):
            ProvenanceStore.open(str(tmp_path / "nope"))

    def test_corrupt_manifest_reports_store_error(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        (tmp_path / "MANIFEST.json").write_text("{not json")
        with pytest.raises(StoreError, match="corrupt manifest"):
            ProvenanceStore.open(str(tmp_path))
        del store

    def test_double_ingest_mints_two_runs(self, tmp_path):
        # PR-1 failed fast on a second ingest; runs are namespaces now, so
        # the same graph ingested twice becomes two independent runs.
        cpg = build_example_cpg()
        store = ProvenanceStore.create(str(tmp_path))
        store.ingest(cpg)
        store.ingest(cpg)
        assert store.run_ids() == [1, 2]
        for run_id in store.run_ids():
            assert canonical_edges(store.load_cpg(run=run_id)) == canonical_edges(cpg)

    def test_duplicate_node_within_one_run_rejected(self, tmp_path):
        cpg = build_example_cpg()
        store = ProvenanceStore.create(str(tmp_path))
        store.ingest(cpg, segment_nodes=3)
        node = cpg.subcomputation(cpg.nodes()[0])
        with pytest.raises(StoreError, match="twice"):
            store.append_segment([node], [], run=1)

    def test_intra_batch_duplicate_rejected_before_any_write(self, tmp_path):
        cpg = build_example_cpg()
        node = cpg.subcomputation(cpg.nodes()[0])
        store = ProvenanceStore.create(str(tmp_path))
        run_id = store.new_run()
        with pytest.raises(StoreError, match="twice"):
            store.append_segment([node, node], [], run=run_id)
        assert store.manifest.segment_count == 0
        assert not store.indexes.has_node(node.node_id)
        assert list((tmp_path / "segments").iterdir()) == []


# ---------------------------------------------------------------------- #
# Out-of-core query engine
# ---------------------------------------------------------------------- #


class TestStoreQueryEngine:
    @pytest.fixture()
    def stored(self, tmp_path, histogram_run):
        store = ProvenanceStore.create(str(tmp_path / "store"))
        store.ingest(histogram_run.cpg, segment_nodes=4)
        cold = ProvenanceStore.open(str(tmp_path / "store"))
        return histogram_run.cpg, cold

    def test_backward_slice_matches_in_memory(self, stored):
        cpg, store = stored
        engine = StoreQueryEngine(store)
        for node_id in cpg.nodes():
            assert engine.backward_slice(node_id) == backward_slice(cpg, node_id)
            assert engine.backward_slice(node_id, kinds=DEFAULT_SLICE_KINDS) == backward_slice(
                cpg, node_id, kinds=DEFAULT_SLICE_KINDS
            )

    def test_forward_slice_matches_in_memory(self, stored):
        cpg, store = stored
        engine = StoreQueryEngine(store)
        for node_id in cpg.nodes():
            assert engine.forward_slice(node_id) == forward_slice(cpg, node_id)

    def test_lineage_matches_in_memory(self, stored):
        cpg, store = stored
        engine = StoreQueryEngine(store)
        pages = sorted(build_page_index(cpg).pages())
        assert engine.lineage_of_pages(pages[:2]) == lineage_of_pages(cpg, pages[:2])

    def test_taint_matches_in_memory(self, stored):
        cpg, store = stored
        input_pages = sorted(cpg.subcomputation(cpg.input_node).write_set)
        engine = StoreQueryEngine(store)
        for through in (False, True):
            mine = engine.propagate_taint(input_pages[:3], through_thread_state=through)
            reference = propagate_taint(cpg, input_pages[:3], through_thread_state=through)
            assert mine.tainted_nodes == reference.tainted_nodes
            assert mine.tainted_pages == reference.tainted_pages
            assert mine.source_pages == reference.source_pages

    def test_localized_slice_reads_fewer_segments_than_store_holds(self, stored):
        cpg, store = stored
        total = store.manifest.segment_count
        assert total >= 4  # otherwise the assertion below is vacuous
        engine = StoreQueryEngine(store)
        target = cpg.thread_nodes(1)[-1]
        result = engine.backward_slice(target)
        assert result == backward_slice(cpg, target)
        assert 0 < engine.segments_loaded < total

    def test_localized_taint_reads_fewer_segments_than_store_holds(self, tmp_path):
        # Taint seeded at a page only the lock chain touches stays within
        # that chain, so the replay must not decode unrelated segments.
        cpg = build_example_cpg()
        store = ProvenanceStore.create(str(tmp_path / "store"))
        store.ingest(cpg, segment_nodes=2)
        cold = ProvenanceStore.open(str(tmp_path / "store"))
        total = cold.manifest.segment_count
        assert total >= 4
        engine = StoreQueryEngine(cold)
        mine = engine.propagate_taint([10])
        reference = propagate_taint(cpg, [10])
        assert mine.tainted_nodes == reference.tainted_nodes
        assert mine.tainted_pages == reference.tainted_pages
        assert 0 < engine.segments_loaded < total

    def test_unknown_node_raises(self, stored):
        _, store = stored
        with pytest.raises(ProvenanceError):
            StoreQueryEngine(store).backward_slice((999, 0))


# ---------------------------------------------------------------------- #
# Incremental ingest (session sink)
# ---------------------------------------------------------------------- #


class TestStoreSink:
    def test_session_streams_run_into_store(self, tmp_path):
        result = run_with_provenance(
            "histogram", num_threads=4, size="small", store_path=str(tmp_path / "store")
        )
        assert result.store is not None
        assert result.store.manifest.node_count == len(result.cpg)
        cold = ProvenanceStore.open(str(tmp_path / "store"))
        assert canonical_edges(cold.load_cpg()) == canonical_edges(result.cpg)
        assert cold.manifest.runs[0].workload == "histogram"
        assert result.store_run_id == cold.manifest.runs[0].run_id

    def test_sink_commits_epochs_during_the_run(self, tmp_path):
        from repro.inspector.session import InspectorSession
        from repro.workloads.registry import get_workload

        session = InspectorSession(store=str(tmp_path / "store"), store_segment_nodes=4)
        result = session.run(get_workload("histogram"), num_threads=4, size="small")
        epochs = [run.meta["epochs"] for run in result.store.manifest.runs]
        assert epochs and epochs[0] >= 2

    def test_sink_query_results_match_in_memory(self, tmp_path):
        result = run_with_provenance(
            "histogram", num_threads=4, size="small", store_path=str(tmp_path / "store")
        )
        cpg = result.cpg
        engine = StoreQueryEngine(ProvenanceStore.open(str(tmp_path / "store")))
        for node_id in cpg.nodes():
            assert engine.backward_slice(node_id) == backward_slice(cpg, node_id)
        input_pages = sorted(cpg.subcomputation(cpg.input_node).write_set)[:2]
        mine = engine.propagate_taint(input_pages)
        reference = propagate_taint(cpg, input_pages)
        assert mine.tainted_nodes == reference.tainted_nodes
        assert mine.tainted_pages == reference.tainted_pages

    def test_sink_seals_multiple_epochs_for_one_run(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path / "store"))
        cpg = build_example_cpg()
        sink = StoreSink(store, segment_nodes=2)
        for node_id in cpg.topological_order():
            sink.subcomputation_published(cpg.subcomputation(node_id), [])
        sink.finish()
        assert store.manifest.node_count == len(cpg)
        assert sink.epochs_committed >= 2

    def test_store_is_readable_mid_run_up_to_last_epoch(self, tmp_path):
        # Simulates a crash: epochs are committed but finish() never runs.
        store = ProvenanceStore.create(str(tmp_path / "store"))
        cpg = build_example_cpg()
        sink = StoreSink(store, segment_nodes=2)
        order = cpg.topological_order()
        for node_id in order[:5]:
            sink.subcomputation_published(cpg.subcomputation(node_id), [])
        survivor = ProvenanceStore.open(str(tmp_path / "store"))
        assert survivor.manifest.node_count == 4  # two sealed epochs of 2
        assert set(survivor.load_cpg().nodes()) == set(order[:4])

    def test_torn_flush_recovers_previous_generation(self, tmp_path):
        # Simulates a crash after the index files were renamed but before
        # the manifest (the commit point) was: opening must fall back to
        # the previous consistent generation.
        import os

        from repro.store.format import INDEX_DIR, run_index_dir_name

        cpg = build_example_cpg()
        store = ProvenanceStore.create(str(tmp_path))
        run_id = store.new_run(workload="example")
        order = cpg.topological_order()
        first = [cpg.subcomputation(node_id) for node_id in order[:6]]
        second = [cpg.subcomputation(node_id) for node_id in order[6:]]
        store.append_segment(first, [], run=run_id)
        store.flush()
        store.append_segment(second, [], run=run_id)
        # Indexes one generation ahead of the manifest:
        store.indexes.save(os.path.join(str(tmp_path), INDEX_DIR, run_index_dir_name(run_id)))
        reopened = ProvenanceStore.open(str(tmp_path))
        assert reopened.manifest.segment_count == 1
        assert set(reopened.load_cpg().nodes()) == {node.node_id for node in first}
        with pytest.raises(ProvenanceError):
            StoreQueryEngine(reopened).backward_slice(second[0].node_id)
        for keys in list(reopened.indexes.page_writers.values()) + list(
            reopened.indexes.page_readers.values()
        ):
            for key in keys:
                assert key in reopened.indexes.node_segments

    def test_second_run_into_same_store_gets_its_own_namespace(self, tmp_path):
        # PR-1 failed fast here; a store now holds many runs, each with its
        # own run id, index namespace, and disjoint segments.
        store_dir = str(tmp_path / "store")
        first = run_with_provenance("histogram", num_threads=2, size="small", store_path=store_dir)
        second = run_with_provenance("histogram", num_threads=2, size="small", store_path=store_dir)
        assert first.store_run_id != second.store_run_id
        cold = ProvenanceStore.open(store_dir)
        assert cold.run_ids() == [first.store_run_id, second.store_run_id]
        for result in (first, second):
            clone = cold.load_cpg(run=result.store_run_id)
            assert canonical_edges(clone) == canonical_edges(result.cpg)

    def test_runs_have_disjoint_segments(self, tmp_path):
        store = ProvenanceStore.create(str(tmp_path))
        cpg = build_example_cpg()
        store.ingest(cpg, segment_nodes=3)
        store.ingest(cpg, segment_nodes=3)
        by_run = [
            {info.segment_id for info in store.manifest.segments_of_run(run_id)}
            for run_id in store.run_ids()
        ]
        assert by_run[0] and by_run[1]
        assert not (by_run[0] & by_run[1])

    def test_segment_cache_is_bounded(self, tmp_path):
        cpg = build_example_cpg()
        store = ProvenanceStore.create(str(tmp_path))
        store.ingest(cpg, segment_nodes=2)
        cold = ProvenanceStore.open(str(tmp_path))
        cold.max_cached_segments = 2
        total = cold.manifest.segment_count
        assert total > 2
        for segment_id in range(1, total + 1):
            cold.segment(segment_id)
        assert len(cold._cache) == 2
        # Evicted segments are re-read from disk, and correctly.
        reads_before = cold.read_stats.segments_read
        payload = cold.segment(1)
        assert cold.read_stats.segments_read == reads_before + 1
        assert set(payload.nodes) <= set(cpg.nodes())


# ---------------------------------------------------------------------- #
# find_racy_pairs rewrite (satellite)
# ---------------------------------------------------------------------- #


def _reference_racy_pairs(cpg):
    """The original O(n^2 * reachability) implementation, kept as oracle."""
    nodes = [n for n in cpg.nodes() if n[0] >= 0]
    racy = []
    for i, a in enumerate(nodes):
        sub_a = cpg.subcomputation(a)
        for b in nodes[i + 1 :]:
            if a[0] == b[0]:
                continue
            sub_b = cpg.subcomputation(b)
            writes_conflict = (
                (sub_a.write_set & (sub_b.read_set | sub_b.write_set))
                or (sub_b.write_set & sub_a.read_set)
            )
            if writes_conflict and cpg.concurrent(a, b):
                racy.append((a, b, frozenset(writes_conflict)))
    return racy


class TestFindRacyPairsIndexed:
    def test_matches_reference_on_race_free_graph(self):
        cpg = build_example_cpg()
        assert find_racy_pairs(cpg) == _reference_racy_pairs(cpg) == []

    def test_matches_reference_on_racy_graph(self):
        cpg = build_example_cpg(racy=True)
        result = find_racy_pairs(cpg)
        assert result == _reference_racy_pairs(cpg)
        assert result, "the racy example must actually race"

    def test_matches_reference_on_unsynchronized_writers(self):
        tracker = ProvenanceTracker()
        tracker.on_thread_start(1)
        tracker.on_thread_start(2)
        tracker.on_memory_access(1, 7, is_write=True)
        tracker.on_memory_access(2, 7, is_write=True)
        cpg = tracker.finalize()
        assert find_racy_pairs(cpg) == _reference_racy_pairs(cpg)
        assert len(find_racy_pairs(cpg)) == 1

    def test_page_index_covers_all_accesses(self):
        cpg = build_example_cpg()
        index = build_page_index(cpg)
        for node_id in cpg.nodes():
            node = cpg.subcomputation(node_id)
            for page in node.write_set:
                assert node_id in index.writers_of(page)
            for page in node.read_set:
                assert node_id in index.readers_of(page)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #


class TestStoreCLI:
    @pytest.fixture()
    def ingested(self, tmp_path):
        cpg = build_example_cpg()
        json_path = tmp_path / "cpg.json"
        write_cpg(cpg, str(json_path))
        store_dir = str(tmp_path / "store")
        assert store_cli(["ingest", store_dir, str(json_path), "--segment-nodes", "3"]) == 0
        return cpg, store_dir

    def test_info(self, ingested, capsys):
        _, store_dir = ingested
        assert store_cli(["info", store_dir]) == 0
        out = capsys.readouterr().out
        assert "sub-computations" in out and "segments" in out

    def test_info_json(self, ingested, capsys):
        _, store_dir = ingested
        assert store_cli(["info", store_dir, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format_version"] == STORE_FORMAT_VERSION
        assert summary["nodes"] > 0
        assert len(summary["runs"]) == 1

    def test_slice_node_matches_library(self, ingested, capsys):
        cpg, store_dir = ingested
        target = cpg.thread_nodes(3)[0]
        assert store_cli(["slice", store_dir, "--node", node_key(target), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = sorted(node_key(n) for n in backward_slice(cpg, target))
        assert payload["nodes"] == expected

    def test_slice_pages_lineage(self, ingested, capsys):
        cpg, store_dir = ingested
        assert store_cli(["slice", store_dir, "--pages", "12", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = sorted(node_key(n) for n in lineage_of_pages(cpg, [12]))
        assert payload["nodes"] == expected

    def test_taint(self, ingested, capsys):
        cpg, store_dir = ingested
        assert store_cli(["taint", store_dir, "--pages", "100,101", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        reference = propagate_taint(cpg, [100, 101])
        assert payload["tainted_pages"] == sorted(reference.tainted_pages)
        assert payload["tainted_nodes"] == sorted(node_key(n) for n in reference.tainted_nodes)

    def test_slice_requires_exactly_one_origin(self, ingested):
        _, store_dir = ingested
        assert store_cli(["slice", store_dir]) == 2
        assert store_cli(["slice", store_dir, "--node", "1:0", "--pages", "1"]) == 2

    def test_slice_pages_rejects_node_only_flags(self, ingested, capsys):
        _, store_dir = ingested
        assert store_cli(["slice", store_dir, "--pages", "12", "--forward"]) == 2
        assert store_cli(["slice", store_dir, "--pages", "12", "--kinds", "sync"]) == 2
        assert "--node" in capsys.readouterr().err

    def test_errors_surface_as_exit_code_one(self, tmp_path):
        assert store_cli(["info", str(tmp_path / "missing")]) == 1

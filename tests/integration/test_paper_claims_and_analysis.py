"""Integration tests for the paper's qualitative claims and the case studies."""

import pytest

from repro.analysis.debugging import blame_threads, explain_memory_state
from repro.analysis.dift import PolicyAction, PolicyChecker, make_input_policy
from repro.analysis.numa import NUMATopology, placement_improvement
from repro.baselines.process_prov import collapse_to_process_granularity, precision_comparison
from repro.errors import PolicyViolationError
from repro.inspector.api import run_native, run_with_provenance
from repro.inspector.config import InspectorConfig
from repro.workloads.registry import get_workload

FAST = InspectorConfig(page_size=1024)


def paired_run(name, threads=4, size="small", config=FAST):
    workload = get_workload(name)
    dataset = workload.generate_dataset(size)
    native = run_native(workload, threads, dataset=dataset, config=config)
    traced = run_with_provenance(workload, threads, dataset=dataset, config=config)
    return native, traced


class TestPaperShapeClaims:
    """Scaled-down versions of the §VII headline claims (the full sweeps
    live in the benchmark harness)."""

    def test_linear_regression_runs_faster_than_pthreads(self):
        native, traced = paired_run("linear_regression", threads=8, size="medium",
                                    config=InspectorConfig())
        assert traced.stats.overhead_against(native.stats) < 1.0

    def test_blackscholes_overhead_is_reasonable(self):
        native, traced = paired_run("blackscholes", threads=8, size="medium",
                                    config=InspectorConfig())
        assert traced.stats.overhead_against(native.stats) < 3.0

    def test_canneal_is_an_outlier(self):
        native, traced = paired_run("canneal", threads=8, size="medium",
                                    config=InspectorConfig())
        assert traced.stats.overhead_against(native.stats) > 3.5

    def test_outlier_overhead_comes_from_threading_library(self):
        _, traced = paired_run("canneal", threads=8, size="medium", config=InspectorConfig())
        assert traced.stats.threading_seconds > traced.stats.pt_seconds

    def test_wellbehaved_overhead_dominated_by_pt(self):
        _, traced = paired_run("string_match", threads=8, size="medium",
                               config=InspectorConfig())
        # For well-behaved applications the hardware tracing is a large
        # fraction of the added cost (Figure 6's pattern).
        added = traced.stats.threading_seconds + traced.stats.pt_seconds
        assert traced.stats.pt_seconds > 0.25 * added

    def test_overhead_grows_with_thread_count(self):
        workload = get_workload("histogram")
        dataset = workload.generate_dataset("medium")
        config = InspectorConfig()
        overheads = []
        for threads in (2, 16):
            native = run_native(workload, threads, dataset=dataset, config=config)
            traced = run_with_provenance(workload, threads, dataset=dataset, config=config)
            overheads.append(traced.stats.overhead_against(native.stats))
        assert overheads[1] > overheads[0]

    def test_overhead_shrinks_with_larger_inputs(self):
        workload = get_workload("string_match")
        config = InspectorConfig()
        overheads = []
        for size in ("small", "large"):
            dataset = workload.generate_dataset(size)
            native = run_native(workload, 16, dataset=dataset, config=config)
            traced = run_with_provenance(workload, 16, dataset=dataset, config=config)
            overheads.append(traced.stats.overhead_against(native.stats))
        assert overheads[1] < overheads[0]

    def test_trace_is_compressible(self):
        from repro.compression.lz import compression_ratio

        _, traced = paired_run("histogram", threads=4, size="small")
        raw = traced.perf_data.raw_trace()
        assert len(raw) > 0
        result = compression_ratio(raw, sample_limit=64 * 1024)
        assert result.ratio > 2.0

    def test_log_size_correlates_with_branch_count(self):
        sizes = []
        branches = []
        for name in ("histogram", "matrix_multiply", "streamcluster"):
            _, traced = paired_run(name, threads=2, size="small")
            sizes.append(traced.stats.perf_log_bytes)
            branches.append(traced.stats.branch_instructions)
        # More branches -> more trace bytes, in the same order.
        order_by_branches = sorted(range(3), key=lambda i: branches[i])
        order_by_size = sorted(range(3), key=lambda i: sizes[i])
        assert order_by_branches == order_by_size


class TestDebuggingCaseStudy:
    def test_explanation_finds_writers_across_threads(self):
        _, traced = paired_run("histogram", threads=4)
        histogram_addr = None
        # The output shim recorded the histogram buckets as sources.
        histogram_addr = traced.outputs[0].source_pages[0] * FAST.page_size
        explanation = explain_memory_state(traced.cpg, [histogram_addr], page_size=FAST.page_size)
        assert explanation.direct_writers
        assert len(explanation.threads_involved) >= 4
        assert explanation.explanation >= explanation.direct_writers

    def test_blame_threads_counts_every_worker(self):
        _, traced = paired_run("word_count", threads=4)
        pages = set(traced.outputs[0].source_pages)
        blame = blame_threads(traced.cpg, pages)
        assert len(blame) >= 4

    def test_summary_lines_render(self):
        _, traced = paired_run("histogram", threads=2)
        page = traced.outputs[0].source_pages[0]
        explanation = explain_memory_state(
            traced.cpg, [page * FAST.page_size], page_size=FAST.page_size
        )
        lines = explanation.summary_lines(traced.cpg)
        assert any("direct writers" in line for line in lines)


class TestDIFTCaseStudy:
    def test_outputs_derived_from_input_are_flagged(self):
        _, traced = paired_run("histogram", threads=4)
        policy = make_input_policy(traced.cpg, traced.backend.tracker.input_pages)
        report = PolicyChecker(policy).check(traced.cpg, traced.outputs)
        # The histogram is derived from the input, so the output must be tainted.
        assert not report.clean
        assert report.violations

    def test_enforcing_policy_raises(self):
        _, traced = paired_run("histogram", threads=2)
        policy = make_input_policy(traced.cpg, traced.backend.tracker.input_pages)
        with pytest.raises(PolicyViolationError):
            PolicyChecker(policy).check(traced.cpg, traced.outputs, enforce=True)

    def test_unrelated_taint_source_is_clean(self):
        _, traced = paired_run("histogram", threads=2)
        policy = make_input_policy(traced.cpg, [10**9], name="unused-page")
        report = PolicyChecker(policy).check(traced.cpg, traced.outputs)
        assert report.clean

    def test_warn_policy_does_not_raise(self):
        _, traced = paired_run("histogram", threads=2)
        policy = make_input_policy(
            traced.cpg, traced.backend.tracker.input_pages, action=PolicyAction.WARN
        )
        report = PolicyChecker(policy).check(traced.cpg, traced.outputs, enforce=True)
        assert report.violations


class TestNUMACaseStudy:
    def test_cpg_guided_placement_never_worse_than_first_touch(self):
        _, traced = paired_run("word_count", threads=4)
        topology = NUMATopology(nodes=2, hop_cost=2.0)
        report = placement_improvement(traced.cpg, topology)
        assert report["optimised_cost"] <= report["first_touch_cost"]
        assert 0.0 <= report["relative_saving"] <= 1.0

    def test_remote_fraction_decreases(self):
        _, traced = paired_run("histogram", threads=4)
        topology = NUMATopology(nodes=4, hop_cost=3.0)
        report = placement_improvement(traced.cpg, topology)
        assert report["optimised_remote_fraction"] <= report["first_touch_remote_fraction"]

    def test_single_node_topology_has_no_remote_traffic(self):
        _, traced = paired_run("histogram", threads=2)
        topology = NUMATopology(nodes=1)
        report = placement_improvement(traced.cpg, topology)
        assert report["first_touch_remote_fraction"] == 0.0
        assert report["relative_saving"] == 0.0


class TestProcessGranularityBaseline:
    def test_collapse_produces_one_node_per_thread(self):
        _, traced = paired_run("histogram", threads=4)
        coarse = collapse_to_process_granularity(traced.cpg)
        fine_threads = len([t for t in traced.cpg.threads() if t >= 0])
        assert len(coarse) == fine_threads + 1  # plus the input node

    def test_fine_grained_graph_is_more_precise(self):
        _, traced = paired_run("reverse_index", threads=4)
        comparison = precision_comparison(traced.cpg)
        assert comparison["fine_nodes"] > comparison["coarse_nodes"]
        assert comparison["precision_ratio"] >= 1.0

"""End-to-end integration tests: workloads under native and INSPECTOR modes."""

import pytest

from repro.core.cpg import EdgeKind
from repro.core.queries import find_racy_pairs
from repro.core.thunk import INPUT_NODE
from repro.inspector.api import run_native, run_with_provenance
from repro.inspector.config import InspectorConfig
from repro.workloads.registry import all_workloads, get_workload, list_workloads

#: A configuration that keeps integration runs quick.
FAST = InspectorConfig(page_size=1024)


@pytest.fixture(scope="module")
def histogram_runs():
    """One shared pair of native/INSPECTOR runs reused by several tests."""
    workload = get_workload("histogram")
    dataset = workload.generate_dataset("small")
    native = run_native(workload, num_threads=4, dataset=dataset, config=FAST)
    traced = run_with_provenance(workload, num_threads=4, dataset=dataset, config=FAST)
    return workload, dataset, native, traced


class TestResultsMatchAcrossModes:
    def test_registry_is_complete(self):
        assert len(list_workloads()) == 12

    @pytest.mark.parametrize("name", list_workloads())
    def test_workload_results_are_correct_in_both_modes(self, name):
        workload = get_workload(name)
        dataset = workload.generate_dataset("small")
        native = run_native(workload, num_threads=2, dataset=dataset, config=FAST)
        traced = run_with_provenance(workload, num_threads=2, dataset=dataset, config=FAST)
        workload.verify(native.result, dataset)
        workload.verify(traced.result, dataset)

    def test_histogram_results_identical(self, histogram_runs):
        _, _, native, traced = histogram_runs
        assert native.result == traced.result

    def test_dataset_generation_is_deterministic(self):
        workload = get_workload("word_count")
        first = workload.generate_dataset("small", seed=7)
        second = workload.generate_dataset("small", seed=7)
        assert first.payload == second.payload
        assert first.meta["expected"] == second.meta["expected"]

    def test_dataset_sizes_increase(self):
        workload = get_workload("string_match")
        small = workload.generate_dataset("small")
        medium = workload.generate_dataset("medium")
        large = workload.generate_dataset("large")
        assert small.size_bytes < medium.size_bytes < large.size_bytes


class TestProvenanceGraphWellFormed:
    def test_cpg_is_acyclic(self, histogram_runs):
        _, _, _, traced = histogram_runs
        assert traced.cpg.is_acyclic()

    def test_every_thread_has_nodes(self, histogram_runs):
        _, _, _, traced = histogram_runs
        # Main thread plus four workers.
        assert len([t for t in traced.cpg.threads() if t >= 0]) == 5

    def test_control_edges_follow_program_order(self, histogram_runs):
        _, _, _, traced = histogram_runs
        for source, target, _ in traced.cpg.edges(EdgeKind.CONTROL):
            assert source[0] == target[0]
            assert source[1] < target[1]

    def test_sync_edges_respect_happens_before(self, histogram_runs):
        _, _, _, traced = histogram_runs
        for source, target, _ in traced.cpg.edges(EdgeKind.SYNC):
            assert traced.cpg.happens_before(source, target)

    def test_data_edges_follow_happens_before_and_pages(self, histogram_runs):
        _, _, _, traced = histogram_runs
        for source, target, attrs in traced.cpg.edges(EdgeKind.DATA):
            pages = attrs["pages"]
            src = traced.cpg.subcomputation(source)
            dst = traced.cpg.subcomputation(target)
            assert pages <= src.write_set
            assert pages <= dst.read_set
            if source != INPUT_NODE:
                assert traced.cpg.happens_before(source, target)

    def test_input_node_present_and_feeds_workers(self, histogram_runs):
        _, _, _, traced = histogram_runs
        assert traced.cpg.input_node is not None
        input_successors = traced.cpg.successors(INPUT_NODE, EdgeKind.DATA)
        assert input_successors, "nobody read the input?"

    def test_no_races_in_lock_protected_workload(self, histogram_runs):
        _, _, _, traced = histogram_runs
        assert find_racy_pairs(traced.cpg) == []

    def test_read_write_sets_are_page_ids(self, histogram_runs):
        _, _, _, traced = histogram_runs
        max_page = (1 << 63) // FAST.page_size
        for node in traced.cpg.subcomputations():
            for page in node.read_set | node.write_set:
                assert 0 <= page < max_page

    def test_thunks_recorded_for_branchy_subcomputations(self, histogram_runs):
        _, _, _, traced = histogram_runs
        assert any(node.branch_count > 0 for node in traced.cpg.subcomputations())


class TestStatisticsAndTrace:
    def test_stats_counters_positive(self, histogram_runs):
        _, _, _, traced = histogram_runs
        stats = traced.stats
        assert stats.page_faults > 0
        assert stats.sync_ops > 0
        assert stats.pt_bytes > 0
        assert stats.perf_log_bytes > stats.pt_bytes * 0.5
        assert stats.total_seconds > 0
        assert stats.cpg_nodes == len(traced.cpg)

    def test_native_run_has_no_provenance_costs(self, histogram_runs):
        _, _, native, _ = histogram_runs
        assert native.stats.page_faults == 0
        assert native.stats.pt_bytes == 0
        assert native.stats.pt_seconds == 0.0

    def test_trace_decodes_to_recorded_branches(self, histogram_runs):
        from repro.perf.script import PerfScript

        _, _, _, traced = histogram_runs
        output = PerfScript(traced.backend.image_map).run(traced.perf_data)
        assert output.total_branches == traced.stats.branch_instructions
        assert output.lost_events == 0

    def test_output_shim_recorded(self, histogram_runs):
        _, _, _, traced = histogram_runs
        assert traced.outputs
        assert all(record.data for record in traced.outputs)

    def test_work_metric_at_least_time_metric(self, histogram_runs):
        _, _, _, traced = histogram_runs
        assert traced.stats.work_seconds >= traced.stats.total_seconds


class TestSchedulerAndThreadCountVariations:
    def test_result_is_schedule_independent(self):
        workload = get_workload("word_count")
        dataset = workload.generate_dataset("small")
        results = []
        for seed in range(3):
            config = InspectorConfig(page_size=1024, scheduler="random", scheduler_seed=seed)
            results.append(run_with_provenance(workload, 4, dataset=dataset, config=config).result)
        assert results[0] == results[1] == results[2]

    def test_result_independent_of_thread_count(self):
        workload = get_workload("histogram")
        dataset = workload.generate_dataset("small")
        results = [
            run_with_provenance(workload, threads, dataset=dataset, config=FAST).result
            for threads in (1, 2, 8)
        ]
        assert results[0] == results[1] == results[2]

    def test_more_threads_create_more_processes(self):
        workload = get_workload("string_match")
        dataset = workload.generate_dataset("small")
        two = run_with_provenance(workload, 2, dataset=dataset, config=FAST)
        eight = run_with_provenance(workload, 8, dataset=dataset, config=FAST)
        assert eight.stats.process_creations > two.stats.process_creations

    def test_kmeans_creates_hundreds_of_processes_at_sixteen_threads(self):
        workload = get_workload("kmeans")
        dataset = workload.generate_dataset("small")
        result = run_with_provenance(workload, 16, dataset=dataset, config=FAST)
        assert result.stats.process_creations > 400


class TestSnapshotFacilityDuringRuns:
    def test_snapshots_taken_and_consistent(self):
        config = InspectorConfig(page_size=1024, enable_snapshots=True, snapshot_interval=8)
        workload = get_workload("reverse_index")
        result = run_with_provenance(workload, 4, size="small", config=config)
        snapshotter = result.backend.snapshotter
        assert snapshotter is not None
        assert snapshotter.stats.snapshots_taken > 0
        assert all(record.consistent for record in snapshotter.stats.records)

    def test_snapshot_ring_respects_slot_count(self):
        config = InspectorConfig(
            page_size=1024,
            enable_snapshots=True,
            snapshot_interval=4,
            snapshot_slot_count=2,
            snapshot_slot_size=1 << 20,
        )
        workload = get_workload("canneal")
        result = run_with_provenance(workload, 2, size="small", config=config)
        ring = result.backend.snapshotter.ring
        assert len(ring.occupied_slots()) <= 2


class TestConfigurationToggles:
    def test_disabling_pt_removes_trace(self):
        config = InspectorConfig(page_size=1024, enable_pt=False)
        result = run_with_provenance("histogram", 2, size="small", config=config)
        assert result.stats.pt_bytes == 0
        assert result.stats.pt_seconds == 0.0
        # Memory provenance is still recorded.
        assert result.stats.page_faults > 0

    def test_disabling_memory_tracking_removes_faults(self):
        config = InspectorConfig(page_size=1024, enable_memory_tracking=False)
        result = run_with_provenance("histogram", 2, size="small", config=config)
        assert result.stats.page_faults == 0
        assert result.stats.pt_bytes > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            InspectorConfig(page_size=1000).validate()
        with pytest.raises(ValueError):
            InspectorConfig(scheduler="magic").validate()

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ValueError):
            run_with_provenance("histogram", 0, size="small")

"""The baseline gate, end to end: bless a run, gate later runs against it.

The CI shape the gate exists for: a blessed ("known good") run's
provenance fingerprints persist inside the store, a provenance-identical
rerun passes ``check`` with exit 0, and an injected configuration change
(a different traced thread count) fails it with a nonzero exit and a
page-level diff naming exactly the pages whose lineage moved.
"""

import json
import os

import pytest

from repro.errors import StoreError
from repro.inspector.api import run_with_provenance
from repro.store import (
    ProvenanceBaseline,
    ProvenanceStore,
    StoreQueryEngine,
    bless_baseline,
    check_against_baseline,
    list_baselines,
)
from repro.store.__main__ import main as store_cli
from repro.store.gate import baselines_dir, resolve_baseline
from repro.store.query import diff_lineage

from tests.unit.test_store import build_example_cpg


@pytest.fixture(scope="module")
def gated_store(tmp_path_factory):
    """A store with a blessed run, an identical rerun, and a divergent run.

    Runs 1 and 2 are the same workload/threads/seed (provenance-identical
    by the determinism the pipeline guarantees); run 3 traces the same
    workload with a different thread count -- the injected config change
    the gate must catch.
    """
    path = str(tmp_path_factory.mktemp("gate") / "store")
    blessed = run_with_provenance(
        "histogram", num_threads=2, size="small", seed=7, store_path=path
    )
    rerun = run_with_provenance(
        "histogram", num_threads=2, size="small", seed=7, store_path=path
    )
    diverged = run_with_provenance(
        "histogram", num_threads=4, size="small", seed=7, store_path=path
    )
    return {
        "path": path,
        "blessed": blessed.store_run_id,
        "rerun": rerun.store_run_id,
        "diverged": diverged.store_run_id,
    }


class TestBless:
    def test_bless_persists_under_index_baselines(self, gated_store):
        with ProvenanceStore.open(gated_store["path"]) as store:
            baseline = bless_baseline(store, run=gated_store["blessed"], name="good")
            saved = baseline.save(store)
            assert saved == os.path.join(baselines_dir(store), "good.json")
            assert os.path.isfile(saved)
            assert "good" in list_baselines(store)
            # Every page the run touched got a fingerprint.
            touched = store.indexes_for(gated_store["blessed"]).pages_touched()
            assert {pages[0] for pages in baseline.page_sets} == set(touched)

    def test_baseline_roundtrips_through_disk(self, gated_store):
        with ProvenanceStore.open(gated_store["path"]) as store:
            blessed = bless_baseline(store, run=gated_store["blessed"], name="rt")
            blessed.save(store)
            loaded = ProvenanceBaseline.load(store, "rt")
            assert loaded.to_dict() == blessed.to_dict()

    def test_fsck_stays_clean_with_baselines_on_disk(self, gated_store):
        # The baselines directory must not read as orphan files to the
        # integrity machinery.
        from repro.store import verify_store

        report = verify_store(gated_store["path"])
        assert report["ok"], report["problems"]


class TestCheck:
    def test_identical_rerun_passes(self, gated_store):
        with ProvenanceStore.open(gated_store["path"]) as store:
            report = check_against_baseline(
                store, gated_store["blessed"], run=gated_store["rerun"]
            )
            assert report.ok
            assert report.drifted_pages == []

    def test_run_against_its_own_baseline_passes(self, gated_store):
        with ProvenanceStore.open(gated_store["path"]) as store:
            report = check_against_baseline(
                store, gated_store["blessed"], run=gated_store["blessed"]
            )
            assert report.ok

    def test_divergent_run_fails_with_page_level_diff(self, gated_store):
        with ProvenanceStore.open(gated_store["path"]) as store:
            report = check_against_baseline(
                store, gated_store["blessed"], run=gated_store["diverged"]
            )
            assert not report.ok
            assert report.drifted_pages
            # The reported pages are exactly those whose lineage differs
            # between the blessed and candidate runs.
            engine = StoreQueryEngine(store)
            expected = []
            touched = sorted(store.indexes_for(gated_store["blessed"]).pages_touched())
            for page in touched:
                diff = diff_lineage(
                    gated_store["blessed"],
                    gated_store["diverged"],
                    (page,),
                    engine.lineage_of_pages((page,), run=gated_store["blessed"]),
                    engine.lineage_of_pages((page,), run=gated_store["diverged"]),
                )
                if not diff.identical:
                    expected.append(page)
            lineage_drifted = [
                entry.pages[0]
                for entry in report.drifted_entries
                if entry.only_baseline or entry.only_candidate
            ]
            assert lineage_drifted == expected
            # And the human explanation names the drift.
            text = "\n".join(report.explain())
            assert "DRIFTED" in text

    def test_check_by_run_id_without_prior_bless(self, gated_store):
        # `check --baseline <run>` with nothing persisted blesses the run
        # on the fly.
        with ProvenanceStore.open(gated_store["path"]) as store:
            resolved = resolve_baseline(store, str(gated_store["blessed"]))
            assert resolved.run_id == gated_store["blessed"]
            report = check_against_baseline(
                store, str(gated_store["blessed"]), run=gated_store["rerun"]
            )
            assert report.ok

    def test_missing_baseline_is_an_error(self, gated_store):
        with ProvenanceStore.open(gated_store["path"]) as store:
            with pytest.raises(StoreError):
                check_against_baseline(store, "no-such-baseline")


class TestCheckCli:
    def test_cli_bless_then_clean_check_exits_zero(self, gated_store, capsys):
        path = gated_store["path"]
        assert (
            store_cli(
                ["bless", path, "--run", str(gated_store["blessed"]), "--name", "ci"]
            )
            == 0
        )
        assert "blessed run" in capsys.readouterr().out
        code = store_cli(
            ["check", path, "--baseline", "ci", "--run", str(gated_store["rerun"])]
        )
        assert code == 0
        assert "provenance matches" in capsys.readouterr().out

    def test_cli_check_divergence_exits_nonzero_with_diff(self, gated_store, capsys):
        path = gated_store["path"]
        store_cli(["bless", path, "--run", str(gated_store["blessed"]), "--name", "ci2"])
        capsys.readouterr()
        code = store_cli(
            ["check", path, "--baseline", "ci2", "--run", str(gated_store["diverged"])]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DRIFTED" in out
        assert "pages" in out

    def test_cli_check_json_reports_drift_machine_readably(self, gated_store, capsys):
        path = gated_store["path"]
        code = store_cli(
            [
                "check",
                path,
                "--baseline",
                str(gated_store["blessed"]),
                "--run",
                str(gated_store["diverged"]),
                "--json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["baseline_run"] == gated_store["blessed"]
        assert payload["candidate_run"] == gated_store["diverged"]
        assert payload["drifted_pages"]
        assert payload["entries"]

    def test_cli_check_unknown_baseline_exits_one(self, gated_store, capsys):
        code = store_cli(["check", gated_store["path"], "--baseline", "nope"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestRacyPairGate:
    def test_racy_pair_appearing_fails_the_gate(self, tmp_path):
        path = str(tmp_path / "racy-store")
        with ProvenanceStore.create(path) as store:
            store.ingest(build_example_cpg(), segment_nodes=3, workload="plain")
            store.ingest(build_example_cpg(racy=True), segment_nodes=3, workload="racy")
            baseline = bless_baseline(store, run=1, name="no-races")
            assert baseline.racy_pairs == []  # the blessed run has none
            baseline.save(store)
            report = check_against_baseline(store, "no-races", run=2)
            assert not report.ok
            assert report.racy_added  # new racy pair(s) surfaced
            text = "\n".join(report.explain())
            assert "racy" in text

"""The run-fleet generator and its population-level drift report.

A fleet replays randomized-but-deterministic workload variants into one
store -- sequentially, concurrently through the transparent loopback
bridge, or remotely against a writable server -- and ``drift_report``
compares two run populations page by page.  The marked-slow soak at the
end is the scheduled-lane workhorse: a concurrent fleet against a
maintaining server, then a clean population self-comparison.
"""

import time

import pytest

from repro.store import (
    AutopilotPolicy,
    FleetSpec,
    ProvenanceStore,
    StoreError,
    StoreServer,
    drift_report,
    run_fleet,
    verify_store,
)

from helpers.fleet import tiny_fleet_spec


class TestFleetPlan:
    def test_plan_is_deterministic_per_seed(self):
        spec = tiny_fleet_spec(runs=6, workloads=("histogram", "word_count"))
        assert spec.plan() == spec.plan()
        reseeded = tiny_fleet_spec(
            runs=6, workloads=("histogram", "word_count"), fleet_seed=7
        )
        assert [v.workload for v in spec.plan()] != [
            v.workload for v in reseeded.plan()
        ] or [v.seed for v in spec.plan()] != [v.seed for v in reseeded.plan()] or (
            spec.plan() != reseeded.plan()
        )

    def test_spec_validates(self):
        with pytest.raises(StoreError):
            FleetSpec(runs=0)
        with pytest.raises(StoreError):
            FleetSpec(concurrency=0)
        with pytest.raises(StoreError):
            FleetSpec(workloads=())
        with pytest.raises(StoreError):
            run_fleet(tiny_fleet_spec())  # no sink at all


class TestFleetIngest:
    def test_sequential_local_fleet_ingests_every_variant(self, tmp_path):
        path = str(tmp_path / "store")
        result = run_fleet(tiny_fleet_spec(runs=3, concurrency=1), store_path=path)
        assert result.errors == []
        assert result.run_ids == [1, 2, 3]
        assert result.runs_per_s > 0
        with ProvenanceStore.open(path) as store:
            assert store.run_ids() == [1, 2, 3]
            # Each run carries its fleet provenance in the manifest.
            for fleet_run in result.runs:
                meta = store.manifest.run_info(fleet_run.run_id).meta
                assert meta["fleet_variant"] == fleet_run.variant
                assert meta["fleet_threads"] == fleet_run.threads

    def test_concurrent_local_fleet_bridges_through_a_loopback_server(self, tmp_path):
        path = str(tmp_path / "store")
        result = run_fleet(tiny_fleet_spec(runs=4, concurrency=3), store_path=path)
        assert result.errors == []
        assert sorted(result.run_ids) == [1, 2, 3, 4]
        # Concurrent ingest left a structurally sound store behind.
        report = verify_store(path)
        assert report["ok"], report["problems"]

    def test_remote_fleet_streams_into_a_writable_server(self, tmp_path):
        path = str(tmp_path / "store")
        ProvenanceStore.create(path).close()
        server = StoreServer(path, writable=True)
        try:
            host, port = server.start()
            result = run_fleet(
                tiny_fleet_spec(runs=3, concurrency=2), store_url=f"{host}:{port}"
            )
            assert result.errors == []
            assert sorted(result.run_ids) == [1, 2, 3]
        finally:
            server.close()
        with ProvenanceStore.open(path) as store:
            assert store.run_ids() == [1, 2, 3]

    def test_bad_variant_is_recorded_not_raised(self, tmp_path):
        path = str(tmp_path / "store")
        spec = tiny_fleet_spec(runs=3, workloads=("histogram", "no-such-workload"))
        result = run_fleet(spec, store_path=path)
        assert result.errors, "the unknown workload must surface as per-run errors"
        failed = {run.workload for run in result.errors}
        assert failed == {"no-such-workload"}
        succeeded = [run for run in result.runs if run.error is None]
        assert all(run.run_id is not None for run in succeeded)


class TestDriftReport:
    def test_identical_populations_report_clean(self, tmp_path):
        path = str(tmp_path / "store")
        result = run_fleet(tiny_fleet_spec(runs=4, concurrency=1), store_path=path)
        with ProvenanceStore.open(path) as store:
            report = drift_report(store, result.run_ids[:2], result.run_ids[2:])
            assert report["ok"]
            assert report["diverged_pages"] == []
            assert report["pages_checked"] > 0

    def test_divergent_population_is_flagged_page_by_page(self, tmp_path):
        path = str(tmp_path / "store")
        clean = run_fleet(tiny_fleet_spec(runs=2, concurrency=1), store_path=path)
        skewed = run_fleet(
            tiny_fleet_spec(runs=2, concurrency=1, threads=(4,)), store_path=path
        )
        with ProvenanceStore.open(path) as store:
            report = drift_report(store, clean.run_ids, skewed.run_ids)
            assert not report["ok"]
            assert report["diverged_pages"]
            entry = report["diverged"][0]
            assert entry["only_a"] or entry["only_b"]
            # max_pages bounds the work and says so.
            capped = drift_report(
                store, clean.run_ids, skewed.run_ids, max_pages=1
            )
            assert capped["pages_checked"] == 1
            assert capped["pages_truncated"] is True


@pytest.mark.slow
class TestFleetSoak:
    def test_concurrent_fleet_against_a_maintaining_server(self, tmp_path):
        """The scheduled-lane soak: volume + concurrency + maintenance."""
        path = str(tmp_path / "store")
        ProvenanceStore.create(path).close()
        policy = AutopilotPolicy(
            gc_keep_last=6, compact_min_delta_files=1, scrub_interval_s=0.5
        )
        server = StoreServer(
            path, writable=True, maintenance=policy, maintenance_interval_s=0.1
        )
        try:
            host, port = server.start()
            result = run_fleet(
                tiny_fleet_spec(runs=10, concurrency=4), store_url=f"{host}:{port}"
            )
            assert result.errors == []
            assert len(result.run_ids) == 10
            # Let the autopilot catch up with the last commits before
            # reading the retention outcome.
            deadline = time.time() + 5.0
            while time.time() < deadline and len(server.store.run_ids()) > 6:
                time.sleep(0.1)
            failed = [
                d for d in server.autopilot.decisions if d.executed and d.error
            ]
            assert failed == [], [d.to_dict() for d in failed]
        finally:
            server.close()
        with ProvenanceStore.open(path) as store:
            survivors = store.run_ids()
            assert len(survivors) == 6  # gc_keep_last held
            # The surviving population is provenance-uniform: every run
            # is the same variant family, so a self-comparison is clean.
            half = len(survivors) // 2
            report = drift_report(store, survivors[:half], survivors[half:])
            assert report["ok"], report["diverged_pages"]
        assert verify_store(path)["ok"]

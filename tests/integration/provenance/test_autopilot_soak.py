"""The store autopilot: policy-driven maintenance that readers never feel.

The unit-shaped tests pin each policy trigger (dry-run, fragmentation
compaction, retention gc, quarantine-driven scrub, the decision log);
the soak at the end is the headline: an autopilot embedded in a writable
server churns compact/gc/scrub while four warm readers hammer a blessed
run and a remote writer ingests new ones -- the readers' answers never
change and no query errors.
"""

import json
import os
import time

import pytest

from repro.store import (
    Autopilot,
    AutopilotPolicy,
    ProvenanceStore,
    StoreClient,
    StoreError,
    StoreServer,
    bless_baseline,
)
from repro.store.integrity import scrub

from helpers.fleet import WarmReaders, populate_fleet_store, tiny_fleet_spec
from tests.unit.test_store import build_example_cpg


def fragmented_store(path):
    """A store whose one run is shredded into one-node segments."""
    store = ProvenanceStore.create(path)
    store.ingest(build_example_cpg(), segment_nodes=1, workload="shredded")
    return store


class TestPolicy:
    def test_policy_roundtrips_and_rejects_unknown_keys(self):
        policy = AutopilotPolicy(gc_keep_last=3, scrub_interval_s=60.0, dry_run=True)
        assert AutopilotPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(StoreError):
            AutopilotPolicy.from_dict({"keep_forever": True})
        with pytest.raises(StoreError):
            AutopilotPolicy(gc_keep_last=-1)
        with pytest.raises(StoreError):
            AutopilotPolicy(scrub_interval_s=0)

    def test_dry_run_plans_everything_and_executes_nothing(self, tmp_path):
        with fragmented_store(str(tmp_path / "store")) as store:
            segments_before = store.manifest.segment_count
            pilot = Autopilot(store, AutopilotPolicy(dry_run=True))
            decisions = pilot.run_once()
            assert decisions, "a shredded run must at least plan a compact"
            assert all(d.dry_run and not d.executed for d in decisions)
            assert store.manifest.segment_count == segments_before


class TestActions:
    def test_compacts_fragmented_run_and_answers_stay_equal(self, tmp_path):
        with fragmented_store(str(tmp_path / "store")) as store:
            from repro.store import StoreQueryEngine

            before = StoreQueryEngine(store).lineage_of_pages((3,), run=1)
            segments_before = store.manifest.segment_count
            pilot = Autopilot(store, AutopilotPolicy())
            decisions = pilot.run_once()
            compacts = [d for d in decisions if d.action == "compact"]
            assert compacts and all(d.executed and d.error is None for d in compacts)
            assert store.manifest.segment_count < segments_before
            after = StoreQueryEngine(store).lineage_of_pages((3,), run=1)
            assert after == before

    def test_gc_drops_old_runs_but_keeps_protected_and_blessed(self, tmp_path):
        path = str(tmp_path / "store")
        populate_fleet_store(path, runs=4)
        with ProvenanceStore.open(path) as store:
            # Run 1 is blessed (a baseline references it), run 2 is
            # explicitly protected; keep_last=1 would otherwise drop both.
            bless_baseline(store, run=1, name="golden").save(store)
            pilot = Autopilot(
                store,
                AutopilotPolicy(
                    gc_keep_last=1, compact_min_delta_files=10_000, protect_runs=(2,)
                ),
            )
            decisions = pilot.run_once()
            gcs = [d for d in decisions if d.action == "gc"]
            assert len(gcs) == 1 and gcs[0].executed and gcs[0].error is None
            assert gcs[0].result["runs_dropped"] == [3]
            assert store.run_ids() == [1, 2, 4]

    def test_quarantine_triggers_scrub_that_lifts_false_alarms(self, tmp_path):
        path = str(tmp_path / "store")
        populate_fleet_store(path, runs=1)
        with ProvenanceStore.open(path) as store:
            # A clean segment wrongly quarantined: the scrub the autopilot
            # schedules on quarantine presence verifies it and lifts it.
            segment_id = store.manifest.segments[0].segment_id
            store.quarantine_segment(segment_id, "suspected rot", durable=True)
            pilot = Autopilot(
                store, AutopilotPolicy(compact_min_delta_files=10_000, gc_keep_last=None)
            )
            decisions = pilot.run_once()
            scrubs = [d for d in decisions if d.action == "scrub"]
            assert len(scrubs) == 1 and scrubs[0].executed and scrubs[0].error is None
            assert segment_id in scrubs[0].result["unquarantined"]
            assert not store.manifest.quarantined

    def test_decision_log_is_structured_jsonl(self, tmp_path):
        path = str(tmp_path / "store")
        log_path = str(tmp_path / "decisions.jsonl")
        with fragmented_store(path) as store:
            pilot = Autopilot(store, AutopilotPolicy(dry_run=True), log_path=log_path)
            pilot.run_once()
            pilot.run_once()
            assert pilot.cycles == 2
        with open(log_path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines
        for entry in lines:
            assert entry["action"] in ("compact", "gc", "scrub")
            assert entry["reason"]
            assert entry["at"]
            assert entry["dry_run"] is True
        assert [d["action"] for d in lines] == [
            d.to_dict()["action"] for d in pilot.decisions
        ]


class TestServerSoak:
    def test_maintenance_never_disturbs_warm_readers(self, tmp_path):
        """4 warm readers + 1 remote writer + churning autopilot, no tears.

        The blessed run's lineage answers must stay byte-identical across
        compaction, gc of unprotected runs, and scrub cycles, with zero
        reader errors.
        """
        path = str(tmp_path / "store")
        populate_fleet_store(path, runs=2)
        with ProvenanceStore.open(path) as store:
            bless_baseline(store, run=1, name="golden").save(store)
            pages = sorted(store.indexes_for(1).pages_touched())[:2]
        policy = AutopilotPolicy(
            gc_keep_last=2, compact_min_delta_files=1, scrub_interval_s=0.2
        )
        server = StoreServer(
            path, writable=True, maintenance=policy, maintenance_interval_s=0.1
        )
        try:
            host, port = server.start()
            url = f"{host}:{port}"
            with WarmReaders(url, pages, run=1, readers=4) as readers:
                # The remote writer: a small fleet streaming new runs in
                # while maintenance churns underneath the readers.
                from repro.store import run_fleet

                result = run_fleet(tiny_fleet_spec(runs=3), store_url=url)
                assert result.errors == []
                assert len(result.run_ids) == 3
                deadline = time.time() + 3.0
                while time.time() < deadline and server.autopilot.cycles < 5:
                    time.sleep(0.05)
            assert readers.errors == [], readers.errors[:3]
            assert readers.queries > 0
            assert len(readers.answers) == 1, "a reader saw a shifting answer"
            executed = [d for d in server.autopilot.decisions if d.executed]
            assert executed, "the soak never actually exercised maintenance"
            assert {d.action for d in executed} & {"compact", "gc", "scrub"}
            failed = [d for d in executed if d.error is not None]
            assert failed == [], [d.to_dict() for d in failed]
            stats = server.server_stats()
            assert stats["maintenance"]["cycles"] >= 5
        finally:
            server.close()
        # The blessed run survived every gc; newly ingested ones rotated.
        with ProvenanceStore.open(path) as store:
            assert 1 in store.run_ids()
            report = scrub(store, quarantine=False)
            assert report["ok"], report["damage"]

"""Test-suite path setup: make ``tests/helpers`` importable everywhere.

The test tree has no package ``__init__`` files (pytest rootdir-relative
imports), so shared fixtures live in ``tests/helpers`` and this conftest
puts the tests directory itself on ``sys.path`` -- every test file can
``from helpers.faults import ChaosProxy`` regardless of which directory
pytest was pointed at.

Also registers the ``slow`` marker: long soaks (the fleet soak, chaos
runs with real delays) carry ``@pytest.mark.slow`` and the default CI
lane deselects them with ``-m "not slow"``; a scheduled lane runs them.
"""

import os
import sys

_TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running soak tests, deselected from the default CI lane",
    )
